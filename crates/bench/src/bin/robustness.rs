//! Robustness study (extension): welfare under ISL failures.
//!
//! Sweeps the per-slot ISL failure probability and reports every
//! algorithm's social-welfare ratio — how gracefully each degrades when
//! the +Grid starts losing links. CEAR and the congestion-aware baselines
//! route around failures; SSP's fixed min-hop corridors are brittle.
//!
//! ```text
//! cargo run -p sb-bench --release --bin robustness -- --scale fast
//! ```

use sb_bench::parse_args;
use sb_sim::engine::{self, AlgorithmKind};
use sb_sim::metrics;
use sb_sim::output::{markdown_table, write_series_csv, SeriesPoint};

fn main() {
    let opts = parse_args(std::env::args().skip(1));
    let probs = [0.0, 0.02, 0.05, 0.1, 0.2];

    let mut points = Vec::new();
    for &p in &probs {
        let mut scenario = opts.scenario.clone();
        scenario.isl_failure_prob = p;
        let mut values = Vec::new();
        for kind in AlgorithmKind::all(&scenario) {
            let ratios: Vec<f64> = (0..opts.seeds)
                .map(|seed| {
                    let prepared = engine::prepare(&scenario, seed);
                    let requests = engine::workload(&scenario, &prepared, seed);
                    engine::run_prepared(&scenario, &prepared, &requests, &kind, seed)
                        .social_welfare_ratio
                })
                .collect();
            let ms = metrics::mean_std(&ratios);
            eprintln!("failure {p:>5.2}  {:<6} ratio {:.4}", kind.name(), ms.mean);
            values.push((kind.name().to_owned(), ms));
        }
        points.push(SeriesPoint { x: p, values });
    }

    println!(
        "\n# Robustness — social welfare ratio vs ISL failure probability ({} scale)\n",
        opts.scenario.name
    );
    println!("{}", markdown_table("ISL failure prob", &points));
    let path = opts.out_dir.join(format!("robustness_{}.csv", opts.scenario.name));
    write_series_csv(&path, "failure_prob", &points).expect("write CSV");
    println!("CSV written to {}", path.display());
}
