//! Robustness study (extension): reservations under link and node
//! failures.
//!
//! Two sweeps:
//!
//! 1. **Foresight baseline** — the original study: per-slot ISL failures
//!    are applied to the topology *before* routing, so every algorithm
//!    routes around them. Reports each algorithm's social-welfare ratio as
//!    the +Grid loses links.
//! 2. **Unforeseen failures** — outages strike *after* admission. CEAR is
//!    run under each failure model (independent links, whole-satellite
//!    outages, Gilbert–Elliott bursts) × repair policy
//!    (drop / repair / repair-paid) and compared against the foresight
//!    baseline at the same intensity. Reports delivered-welfare ratio,
//!    interruption rate, repair success rate and repair latency.
//!
//! ```text
//! cargo run -p sb-bench --release --bin robustness -- --scale fast
//! ```
//!
//! Long paper-scale sweeps can checkpoint and resume: add
//! `--checkpoint-every N` to journal every run into `OUT/durable/`, and
//! after an interruption rerun with `--resume OUT/durable` to pick up at
//! the last checkpoint (completed cells replay from their cached metrics).
//! `--jobs N` fans the independent sweep cells across N worker threads;
//! `--quote-threads N` parallelizes each CEAR admission across its slots.
//! `--fleet N` runs the same cells across N supervised worker *processes*
//! with per-cell durable results (rerun the same command to resume a
//! killed sweep), and `--chaos SPEC` injects scripted worker kills/hangs
//! for the fault-tolerance tests. Outputs are byte-identical for every
//! value of every knob (CI diffs the CSVs of `--jobs` vs `--fleet` runs
//! under chaos to prove it end-to-end).

use sb_bench::cells::{
    failure_models, robustness_foresight_cells, robustness_unforeseen_cells, FORESIGHT_PROBS,
    UNFORESEEN_PROBS,
};
use sb_bench::{parse_args, prepared_cache, report_cache, run_sweep, write_csv};
use sb_cear::RepairPolicy;
use sb_sim::engine::AlgorithmKind;
use sb_sim::metrics::{self, RunMetrics};
use sb_sim::output::{markdown_table, write_series_csv, SeriesPoint};

fn main() {
    let opts = parse_args(std::env::args().skip(1));
    let cache = prepared_cache(&opts);

    // ---- Part 1: foresight sweep, all algorithms ----------------------
    let foresight_cells = robustness_foresight_cells(&opts.scenario, opts.seeds);
    let foresight_runs = run_sweep(&opts, &cache, &foresight_cells);
    let foresight_ratios: Vec<f64> =
        foresight_runs.iter().map(|m| m.social_welfare_ratio).collect();

    let mut ratio_chunks = foresight_ratios.chunks(opts.seeds as usize);
    let mut foresight_points = Vec::new();
    for &p in &FORESIGHT_PROBS {
        let mut values = Vec::new();
        for kind in AlgorithmKind::all(&opts.scenario) {
            let ratios = ratio_chunks.next().expect("one chunk per (prob, algorithm)");
            let ms = metrics::mean_std(ratios);
            eprintln!("foresight {p:>5.2}  {:<6} ratio {:.4}", kind.name(), ms.mean);
            values.push((kind.name().to_owned(), ms));
        }
        foresight_points.push(SeriesPoint { x: p, values });
    }

    // ---- Part 2: unforeseen failures, CEAR, model × policy ------------
    // The routed series is clean for every unforeseen config (`prepare`
    // ignores the `unforeseen` field), so all cells of one seed share a
    // single prepared network through the cache.
    let unforeseen_cells = robustness_unforeseen_cells(&opts.scenario, opts.seeds);
    let unforeseen_runs = run_sweep(&opts, &cache, &unforeseen_cells);
    report_cache(&cache);

    let mut run_chunks = unforeseen_runs.chunks(opts.seeds as usize);
    let mut delivered_points = Vec::new();
    let mut interruption_points = Vec::new();
    let mut repair_points = Vec::new();
    let mut latency_points = Vec::new();
    for &p in &UNFORESEEN_PROBS {
        let mut delivered = Vec::new();
        let mut interruption = Vec::new();
        let mut repair = Vec::new();
        let mut latency = Vec::new();

        // Foresight reference at the same intensity: with failures known
        // in advance, booked welfare is delivered welfare.
        let foresight = foresight_points
            .iter()
            .find(|pt| pt.x == p)
            .and_then(|pt| pt.values.iter().find(|(a, _)| a == "CEAR"))
            .map(|(_, ms)| *ms)
            .expect("foresight sweep covers the unforeseen probabilities");
        delivered.push(("foresight".to_owned(), foresight));

        for (model_name, _) in failure_models(p) {
            for policy in RepairPolicy::all() {
                let label = format!("{model_name}/{}", policy.name());
                let runs = run_chunks.next().expect("one chunk per (prob, model, policy)");
                let per_seed = |f: &dyn Fn(&RunMetrics) -> f64| {
                    metrics::mean_std(&runs.iter().map(f).collect::<Vec<_>>())
                };
                let d = per_seed(&|m| m.delivered_welfare_ratio);
                delivered.push((label.clone(), d));
                interruption.push((
                    label.clone(),
                    per_seed(&|m| {
                        if m.accepted_requests > 0 {
                            m.interrupted_requests as f64 / m.accepted_requests as f64
                        } else {
                            0.0
                        }
                    }),
                ));
                repair.push((
                    label.clone(),
                    per_seed(&|m| {
                        if m.repair_attempts > 0 {
                            m.repairs_succeeded as f64 / m.repair_attempts as f64
                        } else {
                            0.0
                        }
                    }),
                ));
                latency.push((label.clone(), per_seed(&|m| m.mean_repair_latency_slots)));
                eprintln!("unforeseen {p:>5.2}  {label:<24} delivered {:.4}", d.mean);
            }
        }
        delivered_points.push(SeriesPoint { x: p, values: delivered });
        interruption_points.push(SeriesPoint { x: p, values: interruption });
        repair_points.push(SeriesPoint { x: p, values: repair });
        latency_points.push(SeriesPoint { x: p, values: latency });
    }

    // ---- Reporting ----------------------------------------------------
    let scale = &opts.scenario.name;
    println!("\n# Robustness — social welfare ratio vs foreseen ISL failure probability ({scale} scale)\n");
    println!("{}", markdown_table("ISL failure prob", &foresight_points));
    println!("\n# Robustness — delivered welfare ratio under unforeseen failures, CEAR ({scale} scale)\n");
    println!("{}", markdown_table("failure intensity", &delivered_points));
    println!("\n# Repair success rate (successes / attempts)\n");
    println!("{}", markdown_table("failure intensity", &repair_points));

    let outputs: [(&str, &str, &[SeriesPoint]); 5] = [
        ("robustness", "failure_prob", &foresight_points),
        ("robustness_unforeseen", "failure_intensity", &delivered_points),
        ("robustness_interruption", "failure_intensity", &interruption_points),
        ("robustness_repair", "failure_intensity", &repair_points),
        ("robustness_latency", "failure_intensity", &latency_points),
    ];
    for (stem, x_label, points) in outputs {
        let path = opts.out_dir.join(format!("{stem}_{scale}.csv"));
        write_csv(&path, |p| write_series_csv(p, x_label, points));
        println!("CSV written to {}", path.display());
    }
}
