//! CI smoke test for the mega-constellation topology path: builds
//! reduced-horizon multi-shell series (the two-shell ≥10k-satellite
//! `mega` preset and the three-shell ≥30k-satellite `mega3` preset) with
//! the delta compiler, verifies each is bit-identical to the dense full
//! rebuild, and asserts the shared-structure memory contract (series
//! heap ceiling and the ≥5× per-slot marginal reduction over the dense
//! representation).
//!
//! ```text
//! cargo run -p sb-bench --release --bin mega_smoke
//! ```
//!
//! Exits non-zero (panics) on any violated contract, so CI can run it
//! bare. The full-horizon measured numbers live in `BENCH_perf.json`'s
//! `mega` section (see the `perf` bin); this bin is the fast gate.

use sb_geo::coords::Geodetic;
use sb_orbit::walker::WalkerConstellation;
use sb_sim::ScenarioConfig;
use sb_topology::{NetworkNodes, TopologySeries};
use std::time::Instant;

/// Reduced horizon: enough slots to exercise base + delta + parallel
/// range splits, short enough for a CI smoke job.
const SMOKE_SLOTS: usize = 4;

/// Same retained-series ceiling the perf bin asserts at the full mega
/// horizon; the smoke horizon is shorter, so this is strictly looser.
const MEGA_HEAP_CEILING_BYTES: usize = 256 << 20;

/// The three-shell preset carries ~3× the satellites; the base snapshot
/// scales linearly with them, so its ceiling does too.
const MEGA3_HEAP_CEILING_BYTES: usize = 768 << 20;

/// One preset's smoke pass: delta build == full rebuild, heap ceiling,
/// ≥5× marginal ratio.
fn smoke(scenario: &ScenarioConfig, min_sats: usize, min_shells: usize, heap_ceiling: usize) {
    let name = &scenario.name;
    let mut shells = vec![WalkerConstellation::delta(
        scenario.planes,
        scenario.sats_per_plane,
        scenario.phasing,
        scenario.altitude_m,
        scenario.inclination_deg.to_radians(),
    )];
    for s in &scenario.extra_shells {
        shells.push(WalkerConstellation::delta(
            s.planes,
            s.sats_per_plane,
            s.phasing,
            s.altitude_m,
            s.inclination_deg.to_radians(),
        ));
    }
    let mut nodes = NetworkNodes::from_shells(&shells);
    nodes.add_ground_site(Geodetic::from_degrees(35.8, -78.6, 0.0));
    nodes.add_ground_site(Geodetic::from_degrees(48.9, 2.3, 0.0));
    for eo in sb_orbit::eo::synthetic_fleet(4) {
        nodes.add_space_user(eo);
    }
    assert!(
        nodes.num_satellites() >= min_sats,
        "{name} preset must be ≥{min_sats} satellites, got {}",
        nodes.num_satellites()
    );
    assert!(shells.len() >= min_shells, "{name} preset must be ≥{min_shells} shells");

    eprintln!(
        "{name}-smoke: {} satellites, {} shells, {SMOKE_SLOTS} slots…",
        nodes.num_satellites(),
        shells.len()
    );
    let t = Instant::now();
    let delta = TopologySeries::build_par(&nodes, &scenario.topology, SMOKE_SLOTS, 60.0, 4);
    let delta_s = t.elapsed().as_secs_f64();
    let t = Instant::now();
    let full = TopologySeries::build_full(&nodes, &scenario.topology, SMOKE_SLOTS, 60.0);
    let full_s = t.elapsed().as_secs_f64();

    assert!(delta == full, "delta-compiled {name} series diverged from the full rebuild");

    let heap = delta.heap_bytes();
    assert!(
        heap <= heap_ceiling,
        "{name} series heap {heap} B exceeds the {heap_ceiling} B ceiling"
    );
    let marginal: usize =
        delta.snapshots().iter().map(|s| s.marginal_heap_bytes()).sum::<usize>() / SMOKE_SLOTS;
    let dense: usize =
        full.snapshots().iter().map(|s| s.marginal_heap_bytes()).sum::<usize>() / SMOKE_SLOTS;
    let ratio = dense as f64 / marginal.max(1) as f64;
    assert!(ratio >= 5.0, "{name} per-slot marginal ratio {ratio:.2}x is below the required 5x");

    println!(
        "{name}-smoke OK: build {delta_s:.2}s (full rebuild {full_s:.2}s), heap {:.1} MiB \
         (ceiling {} MiB), per-slot marginal {:.1} KiB vs dense {:.1} KiB ({ratio:.1}x)",
        heap as f64 / (1 << 20) as f64,
        heap_ceiling >> 20,
        marginal as f64 / 1024.0,
        dense as f64 / 1024.0,
    );
}

fn main() {
    smoke(&ScenarioConfig::mega(), 10_000, 2, MEGA_HEAP_CEILING_BYTES);
    smoke(&ScenarioConfig::mega3(), 30_000, 3, MEGA3_HEAP_CEILING_BYTES);
}
