//! Fig. 8 — cumulative social-welfare ratio over time for the five
//! algorithms at the default arrival rate.
//!
//! ```text
//! cargo run -p sb-bench --release --bin fig8 -- --scale fast
//! ```
//!
//! `--jobs N` fans sweep cells across workers, `--quote-threads N`
//! parallelizes each CEAR admission across its slots, `--build-threads N`
//! parallelizes the topology build, and the prepared-network cache shares
//! one build across the five algorithm cells. Outputs are byte-identical
//! for every knob.

use sb_bench::{parse_args, prepared_cache, report_cache, run_cells, write_csv};
use sb_sim::engine::{self, AlgorithmKind};
use sb_sim::output::write_timeseries_csv;

fn main() {
    let opts = parse_args(std::env::args().skip(1));
    let scenario = opts.scenario.clone();

    let kinds = AlgorithmKind::all(&scenario);
    let cache = prepared_cache(&opts);
    let runs = run_cells(opts.jobs, &kinds, |_, kind| {
        let prepared = cache.get(&scenario, 0);
        let requests = engine::workload(&scenario, &prepared, 0);
        engine::run_prepared(&scenario, &prepared, &requests, kind, 0)
    });
    report_cache(&cache);

    let mut series = Vec::new();
    for (kind, m) in kinds.iter().zip(&runs) {
        eprintln!("{:<6} final welfare ratio {:.4}", kind.name(), m.social_welfare_ratio);
        series.push((kind.name().to_owned(), m.welfare_ratio_over_time.clone()));
    }

    println!("\n# Fig. 8 — cumulative social welfare ratio over time ({} scale)\n", scenario.name);
    println!("| algorithm | at 25% | at 50% | at 75% | final |");
    println!("|---|---|---|---|---|");
    for (name, values) in &series {
        let at = |frac: f64| values[((values.len() - 1) as f64 * frac) as usize];
        println!(
            "| {name} | {:.4} | {:.4} | {:.4} | {:.4} |",
            at(0.25),
            at(0.5),
            at(0.75),
            values.last().copied().unwrap_or(1.0)
        );
    }

    let path = opts.out_dir.join(format!("fig8_{}.csv", scenario.name));
    write_csv(&path, |p| write_timeseries_csv(p, &series));
    println!("\nCSV written to {}", path.display());
}
