//! Fig. 7 — energy-depleted satellites over time (left, default arrival
//! rate) and congested links over time (right, 2.5× the default rate —
//! the paper uses rate 25 against a default of 10).
//!
//! ```text
//! cargo run -p sb-bench --release --bin fig7 -- --scale fast
//! ```
//!
//! `--jobs N` fans sweep cells across workers, `--quote-threads N`
//! parallelizes each CEAR admission across its slots, `--build-threads N`
//! parallelizes the topology build, and the prepared-network cache shares
//! one build across all ten cells (both subfigures differ only in load).
//! Outputs are byte-identical for every knob.

use sb_bench::{parse_args, prepared_cache, report_cache, run_cells, write_csv};
use sb_sim::engine::{self, AlgorithmKind};
use sb_sim::output::write_timeseries_csv;
use sb_sim::ScenarioConfig;

fn main() {
    let opts = parse_args(std::env::args().skip(1));

    // Both subfigures as one flat cell list: (scenario, algorithm) pairs in
    // deterministic order — left (default rate) first, then right (hot).
    let scenario = opts.scenario.clone();
    let mut hot = opts.scenario.clone();
    hot.arrivals_per_slot *= 2.5;
    let cells: Vec<(ScenarioConfig, AlgorithmKind)> = AlgorithmKind::all(&scenario)
        .into_iter()
        .map(|k| (scenario.clone(), k))
        .chain(AlgorithmKind::all(&hot).into_iter().map(|k| (hot.clone(), k)))
        .collect();
    let cache = prepared_cache(&opts);
    let runs = run_cells(opts.jobs, &cells, |_, (sc, kind)| {
        let prepared = cache.get(sc, 0);
        let requests = engine::workload(sc, &prepared, 0);
        engine::run_prepared(sc, &prepared, &requests, kind, 0)
    });
    report_cache(&cache);
    let n_left = AlgorithmKind::all(&scenario).len();

    // Left subfigure: depleted satellites at the default rate.
    let mut depleted_series = Vec::new();
    for ((_, kind), m) in cells.iter().zip(&runs).take(n_left) {
        eprintln!(
            "{:<6} depleted: mean {:.2} peak {}",
            kind.name(),
            m.mean_depleted(),
            m.peak_depleted()
        );
        depleted_series.push((
            kind.name().to_owned(),
            m.depleted_satellites_over_time.iter().map(|&c| c as f64).collect(),
        ));
    }

    // Right subfigure: congested links at 2.5× the default rate.
    let mut congested_series = Vec::new();
    for ((_, kind), m) in cells.iter().zip(&runs).skip(n_left) {
        eprintln!(
            "{:<6} congested: mean {:.2} peak {}",
            kind.name(),
            m.mean_congested(),
            m.peak_congested()
        );
        congested_series.push((
            kind.name().to_owned(),
            m.congested_links_over_time.iter().map(|&c| c as f64).collect(),
        ));
    }

    println!("\n# Fig. 7 — over-time resource health ({} scale)\n", opts.scenario.name);
    println!(
        "## Energy-depleted satellites (battery < 20 %), rate {}/slot",
        opts.scenario.arrivals_per_slot
    );
    print_summary(&depleted_series);
    println!("\n## Congested links (residual < 10 %), rate {}/slot", hot.arrivals_per_slot);
    print_summary(&congested_series);

    let left = opts.out_dir.join(format!("fig7_depleted_{}.csv", opts.scenario.name));
    let right = opts.out_dir.join(format!("fig7_congested_{}.csv", opts.scenario.name));
    write_csv(&left, |p| write_timeseries_csv(p, &depleted_series));
    write_csv(&right, |p| write_timeseries_csv(p, &congested_series));
    println!("\nCSV written to {} and {}", left.display(), right.display());
}

fn print_summary(series: &[(String, Vec<f64>)]) {
    println!("| algorithm | mean over time | peak |");
    println!("|---|---|---|");
    for (name, values) in series {
        let mean = values.iter().sum::<f64>() / values.len().max(1) as f64;
        let peak = values.iter().copied().fold(0.0, f64::max);
        println!("| {name} | {mean:.2} | {peak:.0} |");
    }
}
