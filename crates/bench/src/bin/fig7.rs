//! Fig. 7 — energy-depleted satellites over time (left, default arrival
//! rate) and congested links over time (right, 2.5× the default rate —
//! the paper uses rate 25 against a default of 10).
//!
//! ```text
//! cargo run -p sb-bench --release --bin fig7 -- --scale fast
//! ```

use sb_bench::{parse_args, write_csv};
use sb_sim::engine::{self, AlgorithmKind};
use sb_sim::output::write_timeseries_csv;

fn main() {
    let opts = parse_args(std::env::args().skip(1));

    // Left subfigure: depleted satellites at the default rate.
    let scenario = opts.scenario.clone();
    let mut depleted_series = Vec::new();
    for kind in AlgorithmKind::all(&scenario) {
        let m = {
            let prepared = engine::prepare(&scenario, 0);
            let requests = engine::workload(&scenario, &prepared, 0);
            engine::run_prepared(&scenario, &prepared, &requests, &kind, 0)
        };
        eprintln!(
            "{:<6} depleted: mean {:.2} peak {}",
            kind.name(),
            m.mean_depleted(),
            m.peak_depleted()
        );
        depleted_series.push((
            kind.name().to_owned(),
            m.depleted_satellites_over_time.iter().map(|&c| c as f64).collect(),
        ));
    }

    // Right subfigure: congested links at 2.5× the default rate.
    let mut hot = opts.scenario.clone();
    hot.arrivals_per_slot *= 2.5;
    let mut congested_series = Vec::new();
    for kind in AlgorithmKind::all(&hot) {
        let m = {
            let prepared = engine::prepare(&hot, 0);
            let requests = engine::workload(&hot, &prepared, 0);
            engine::run_prepared(&hot, &prepared, &requests, &kind, 0)
        };
        eprintln!(
            "{:<6} congested: mean {:.2} peak {}",
            kind.name(),
            m.mean_congested(),
            m.peak_congested()
        );
        congested_series.push((
            kind.name().to_owned(),
            m.congested_links_over_time.iter().map(|&c| c as f64).collect(),
        ));
    }

    println!("\n# Fig. 7 — over-time resource health ({} scale)\n", opts.scenario.name);
    println!(
        "## Energy-depleted satellites (battery < 20 %), rate {}/slot",
        opts.scenario.arrivals_per_slot
    );
    print_summary(&depleted_series);
    println!("\n## Congested links (residual < 10 %), rate {}/slot", hot.arrivals_per_slot);
    print_summary(&congested_series);

    let left = opts.out_dir.join(format!("fig7_depleted_{}.csv", opts.scenario.name));
    let right = opts.out_dir.join(format!("fig7_congested_{}.csv", opts.scenario.name));
    write_csv(&left, |p| write_timeseries_csv(p, &depleted_series));
    write_csv(&right, |p| write_timeseries_csv(p, &congested_series));
    println!("\nCSV written to {} and {}", left.display(), right.display());
}

fn print_summary(series: &[(String, Vec<f64>)]) {
    println!("| algorithm | mean over time | peak |");
    println!("|---|---|---|");
    for (name, values) in series {
        let mean = values.iter().sum::<f64>() / values.len().max(1) as f64;
        let peak = values.iter().copied().fold(0.0, f64::max);
        println!("| {name} | {mean:.2} | {peak:.0} |");
    }
}
