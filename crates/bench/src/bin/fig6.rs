//! Fig. 6 — social-welfare ratio of the five algorithms under varying
//! request arrival rates (5, 10, 15, 20, 25 per minute), mean ± std over
//! seeds.
//!
//! ```text
//! cargo run -p sb-bench --release --bin fig6 -- --scale fast
//! cargo run -p sb-bench --release --bin fig6 -- --scale paper   # full
//! cargo run -p sb-bench --release --bin fig6 -- --jobs 8       # parallel
//! cargo run -p sb-bench --release --bin fig6 -- --fleet 4      # processes
//! ```
//!
//! `--quote-threads N` additionally parallelizes each CEAR admission
//! across its slots (bit-identical outputs; see `sb_cear::parquote`), and
//! `--build-threads N` parallelizes each per-slot topology build. The
//! shared prepared-network cache gives the five algorithm cells (and, here,
//! every rate) of one seed a single topology build; `SB_NO_PREPARE_CACHE=1`
//! restores per-cell builds. All knobs are byte-identical on the CSVs.
//!
//! `--fleet N` runs the same cells across N worker *processes* with
//! heartbeat supervision, retries and durable per-cell results (resume a
//! killed sweep by rerunning the same command); `--chaos SPEC` injects
//! scripted faults. CSVs stay byte-identical to `--jobs` runs.

use sb_bench::cells::{fig6_cells, fig6_rates};
use sb_bench::{parse_args, prepared_cache, report_cache, run_sweep, write_csv};
use sb_sim::engine::AlgorithmKind;
use sb_sim::metrics;
use sb_sim::output::{markdown_table, write_series_csv, SeriesPoint};
use sb_sim::RunMetrics;

fn main() {
    let opts = parse_args(std::env::args().skip(1));
    // The paper sweeps 5..=25 requests/min; the fast scenario scales the
    // sweep around its own default load.
    let rates = fig6_rates(&opts.scenario);

    // Flat cell list in deterministic (rate, algorithm, seed) order; both
    // runners return results in exactly this order.
    let cells = fig6_cells(&opts.scenario, opts.seeds);
    let cache = prepared_cache(&opts);
    let metrics_flat = run_sweep(&opts, &cache, &cells);
    report_cache(&cache);

    let mut results = metrics_flat.into_iter();
    let mut points = Vec::new();
    for &rate in &rates {
        let mut values = Vec::new();
        for kind in AlgorithmKind::all(&opts.scenario) {
            let runs: Vec<RunMetrics> =
                (0..opts.seeds).map(|_| results.next().expect("one result per cell")).collect();
            let ratios: Vec<f64> = runs.iter().map(|m| m.social_welfare_ratio).collect();
            values.push((kind.name().to_owned(), metrics::mean_std(&ratios)));
            eprintln!(
                "rate {rate:>5.1}/slot  {:<6} ratio {:.4} ({} runs)",
                kind.name(),
                metrics::mean_std(&ratios).mean,
                runs.len()
            );
        }
        points.push(SeriesPoint { x: rate, values });
    }

    println!("\n# Fig. 6 — social welfare ratio vs arrival rate ({} scale)\n", opts.scenario.name);
    println!("{}", markdown_table("arrival rate (req/slot)", &points));
    let path = opts.out_dir.join(format!("fig6_{}.csv", opts.scenario.name));
    write_csv(&path, |p| write_series_csv(p, "arrival_rate", &points));
    println!("CSV written to {}", path.display());
}
