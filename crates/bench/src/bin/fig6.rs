//! Fig. 6 — social-welfare ratio of the five algorithms under varying
//! request arrival rates (5, 10, 15, 20, 25 per minute), mean ± std over
//! seeds.
//!
//! ```text
//! cargo run -p sb-bench --release --bin fig6 -- --scale fast
//! cargo run -p sb-bench --release --bin fig6 -- --scale paper   # full
//! ```

use sb_bench::{parse_args, write_csv};
use sb_sim::engine::{self, AlgorithmKind};
use sb_sim::output::{markdown_table, write_series_csv, SeriesPoint};
use sb_sim::{metrics, RunMetrics};

fn main() {
    let opts = parse_args(std::env::args().skip(1));
    // The paper sweeps 5..=25 requests/min; the fast scenario scales the
    // sweep around its own default load.
    let base = opts.scenario.arrivals_per_slot;
    let rates: Vec<f64> = [0.5, 1.0, 1.5, 2.0, 2.5].iter().map(|m| m * base).collect();

    let mut points = Vec::new();
    for &rate in &rates {
        let mut scenario = opts.scenario.clone();
        scenario.arrivals_per_slot = rate;
        let mut values = Vec::new();
        for kind in AlgorithmKind::all(&scenario) {
            let runs: Vec<RunMetrics> = (0..opts.seeds)
                .map(|seed| {
                    let prepared = engine::prepare(&scenario, seed);
                    let requests = engine::workload(&scenario, &prepared, seed);
                    engine::run_prepared(&scenario, &prepared, &requests, &kind, seed)
                })
                .collect();
            let ratios: Vec<f64> = runs.iter().map(|m| m.social_welfare_ratio).collect();
            values.push((kind.name().to_owned(), metrics::mean_std(&ratios)));
            eprintln!(
                "rate {rate:>5.1}/slot  {:<6} ratio {:.4} ({} runs)",
                kind.name(),
                metrics::mean_std(&ratios).mean,
                runs.len()
            );
        }
        points.push(SeriesPoint { x: rate, values });
    }

    println!("\n# Fig. 6 — social welfare ratio vs arrival rate ({} scale)\n", opts.scenario.name);
    println!("{}", markdown_table("arrival rate (req/slot)", &points));
    let path = opts.out_dir.join(format!("fig6_{}.csv", opts.scenario.name));
    write_csv(&path, |p| write_series_csv(p, "arrival_rate", &points));
    println!("CSV written to {}", path.display());
}
