//! Shared helpers for the figure-regeneration binaries.
//!
//! Each paper figure has a binary (`fig6` … `fig9`) accepting
//! `--scale {paper,fast}` and `--seeds N`; this crate holds the argument
//! parsing and run-loop plumbing they share.

use sb_sim::ScenarioConfig;

/// Command-line options shared by every figure binary.
#[derive(Debug, Clone, PartialEq)]
pub struct FigureOptions {
    /// The scenario to run ("paper" or "fast").
    pub scenario: ScenarioConfig,
    /// Number of seeds per configuration (paper: 5).
    pub seeds: u64,
    /// Output directory for CSV files.
    pub out_dir: std::path::PathBuf,
}

impl Default for FigureOptions {
    fn default() -> Self {
        FigureOptions {
            scenario: ScenarioConfig::fast(),
            seeds: 3,
            out_dir: std::path::PathBuf::from("results"),
        }
    }
}

/// Parses `--scale {paper,fast}`, `--seeds N` and `--out DIR` from an
/// argument iterator.
///
/// # Panics
///
/// Panics with a usage message on unknown arguments — these are
/// experiment drivers, not long-lived services.
pub fn parse_args(args: impl Iterator<Item = String>) -> FigureOptions {
    let mut opts = FigureOptions::default();
    let mut args = args.peekable();
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--scale" => {
                let v = args.next().expect("--scale needs a value");
                opts.scenario = match v.as_str() {
                    "paper" => {
                        opts.seeds = 5;
                        ScenarioConfig::paper()
                    }
                    "fast" => ScenarioConfig::fast(),
                    "tiny" => ScenarioConfig::tiny(),
                    other => panic!("unknown scale `{other}` (use paper|fast|tiny)"),
                };
            }
            "--seeds" => {
                opts.seeds = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--seeds needs an integer");
            }
            "--out" => {
                opts.out_dir = args.next().expect("--out needs a path").into();
            }
            other => panic!("unknown argument `{other}` (use --scale/--seeds/--out)"),
        }
    }
    opts
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(v: &[&str]) -> FigureOptions {
        parse_args(v.iter().map(|s| s.to_string()))
    }

    #[test]
    fn defaults() {
        let o = parse(&[]);
        assert_eq!(o.scenario.name, "fast");
        assert_eq!(o.seeds, 3);
    }

    #[test]
    fn paper_scale_sets_five_seeds() {
        let o = parse(&["--scale", "paper"]);
        assert_eq!(o.scenario.name, "paper");
        assert_eq!(o.seeds, 5);
    }

    #[test]
    fn explicit_seeds_override() {
        let o = parse(&["--scale", "paper", "--seeds", "2"]);
        assert_eq!(o.seeds, 2);
    }

    #[test]
    #[should_panic(expected = "unknown scale")]
    fn bad_scale_panics() {
        let _ = parse(&["--scale", "warp"]);
    }

    #[test]
    #[should_panic(expected = "unknown argument")]
    fn bad_flag_panics() {
        let _ = parse(&["--frobnicate"]);
    }
}
