//! Shared helpers for the figure-regeneration binaries.
//!
//! Each paper figure has a binary (`fig6` … `fig9`) accepting
//! `--scale {paper,fast}` and `--seeds N`; this crate holds the argument
//! parsing and run-loop plumbing they share.

use sb_sim::engine::{self, AlgorithmKind, PreparedNetwork};
use sb_sim::{DurabilityOptions, RunMetrics, RunOutcome, ScenarioConfig};

/// Command-line options shared by every figure binary.
#[derive(Debug, Clone, PartialEq)]
pub struct FigureOptions {
    /// The scenario to run ("paper" or "fast").
    pub scenario: ScenarioConfig,
    /// Number of seeds per configuration (paper: 5).
    pub seeds: u64,
    /// Output directory for CSV files.
    pub out_dir: std::path::PathBuf,
    /// Checkpoint interval in slots for durable runs (`--checkpoint-every
    /// N`; `0` journals without checkpointing). `None` leaves durability
    /// off unless [`Self::resume_from`] turns it on.
    pub checkpoint_every: Option<usize>,
    /// Resume interrupted runs from this durability directory
    /// (`--resume DIR`).
    pub resume_from: Option<std::path::PathBuf>,
}

impl Default for FigureOptions {
    fn default() -> Self {
        FigureOptions {
            scenario: ScenarioConfig::fast(),
            seeds: 3,
            out_dir: std::path::PathBuf::from("results"),
            checkpoint_every: None,
            resume_from: None,
        }
    }
}

/// Parses `--scale {paper,fast}`, `--seeds N`, `--out DIR`,
/// `--checkpoint-every N` and `--resume DIR` from an argument iterator.
///
/// # Panics
///
/// Panics with a usage message on unknown arguments — these are
/// experiment drivers, not long-lived services.
pub fn parse_args(args: impl Iterator<Item = String>) -> FigureOptions {
    let mut opts = FigureOptions::default();
    let mut args = args.peekable();
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--scale" => {
                let v = args.next().expect("--scale needs a value");
                opts.scenario = match v.as_str() {
                    "paper" => {
                        opts.seeds = 5;
                        ScenarioConfig::paper()
                    }
                    "fast" => ScenarioConfig::fast(),
                    "tiny" => ScenarioConfig::tiny(),
                    other => panic!("unknown scale `{other}` (use paper|fast|tiny)"),
                };
            }
            "--seeds" => {
                opts.seeds =
                    args.next().and_then(|v| v.parse().ok()).expect("--seeds needs an integer");
            }
            "--out" => {
                opts.out_dir = args.next().expect("--out needs a path").into();
            }
            "--checkpoint-every" => {
                opts.checkpoint_every = Some(
                    args.next()
                        .and_then(|v| v.parse().ok())
                        .expect("--checkpoint-every needs an integer"),
                );
            }
            "--resume" => {
                opts.resume_from = Some(args.next().expect("--resume needs a directory").into());
            }
            other => panic!(
                "unknown argument `{other}` \
                 (use --scale/--seeds/--out/--checkpoint-every/--resume)"
            ),
        }
    }
    opts
}

/// Runs one `(cell, seed)` of a sweep, durably when the command line asked
/// for it.
///
/// Without `--checkpoint-every` or `--resume` this is a plain in-memory
/// [`engine::run_prepared`]. With either flag, the run is journaled and
/// checkpointed into a per-cell subdirectory (under `--resume DIR`, or
/// `OUT/durable` for a fresh durable run), and `--resume` picks up each
/// cell where the interrupted sweep left it — completed cells return their
/// cached metrics without re-running.
///
/// # Panics
///
/// Panics with the durable-run error (which names the offending file) when
/// journaling, checkpointing or resume fails.
pub fn run_cell(
    opts: &FigureOptions,
    scenario: &ScenarioConfig,
    prepared: &PreparedNetwork,
    requests: &[sb_demand::Request],
    kind: &AlgorithmKind,
    seed: u64,
    cell: &str,
) -> RunMetrics {
    if opts.checkpoint_every.is_none() && opts.resume_from.is_none() {
        return engine::run_prepared(scenario, prepared, requests, kind, seed);
    }
    let base = opts.resume_from.clone().unwrap_or_else(|| opts.out_dir.join("durable"));
    // Cell labels may carry '/' (model/policy); keep the directory flat.
    let safe: String = cell
        .chars()
        .map(|c| if c.is_ascii_alphanumeric() || matches!(c, '-' | '_' | '.') { c } else { '-' })
        .collect();
    let durability = DurabilityOptions {
        dir: base.join(format!("{safe}_s{seed}")),
        checkpoint_every: opts.checkpoint_every.unwrap_or(1),
        resume: opts.resume_from.is_some(),
        halt_before_slot: None,
    };
    match sb_sim::run_durable(scenario, prepared, requests, kind, seed, &durability) {
        Ok(RunOutcome::Completed(metrics)) => *metrics,
        Ok(RunOutcome::Halted { next_slot }) => {
            unreachable!("no halt requested, yet halted before slot {next_slot}")
        }
        Err(e) => panic!("durable run failed for cell `{cell}` seed {seed}: {e}"),
    }
}

/// Runs a CSV writer against `path`, creating the output directory first.
///
/// The figure binaries used to `expect("write CSV")`, which on a missing
/// or read-only output directory died without saying *which* path failed.
/// This wrapper names the path in both failure modes.
///
/// # Panics
///
/// Panics with the offending path when the directory cannot be created or
/// the writer reports an I/O error.
pub fn write_csv(
    path: &std::path::Path,
    write: impl FnOnce(&std::path::Path) -> std::io::Result<()>,
) {
    if let Some(parent) = path.parent() {
        std::fs::create_dir_all(parent)
            .unwrap_or_else(|e| panic!("cannot create output directory {}: {e}", parent.display()));
    }
    write(path).unwrap_or_else(|e| panic!("cannot write {}: {e}", path.display()));
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(v: &[&str]) -> FigureOptions {
        parse_args(v.iter().map(|s| s.to_string()))
    }

    #[test]
    fn defaults() {
        let o = parse(&[]);
        assert_eq!(o.scenario.name, "fast");
        assert_eq!(o.seeds, 3);
    }

    #[test]
    fn paper_scale_sets_five_seeds() {
        let o = parse(&["--scale", "paper"]);
        assert_eq!(o.scenario.name, "paper");
        assert_eq!(o.seeds, 5);
    }

    #[test]
    fn explicit_seeds_override() {
        let o = parse(&["--scale", "paper", "--seeds", "2"]);
        assert_eq!(o.seeds, 2);
    }

    #[test]
    #[should_panic(expected = "unknown scale")]
    fn bad_scale_panics() {
        let _ = parse(&["--scale", "warp"]);
    }

    #[test]
    #[should_panic(expected = "unknown argument")]
    fn bad_flag_panics() {
        let _ = parse(&["--frobnicate"]);
    }

    #[test]
    fn write_csv_creates_missing_directories() {
        let dir = std::env::temp_dir().join("sb_bench_write_csv_test").join("nested");
        let path = dir.join("out.csv");
        let _ = std::fs::remove_dir_all(dir.parent().unwrap());
        write_csv(&path, |p| std::fs::write(p, "a,b\n"));
        assert_eq!(std::fs::read_to_string(&path).unwrap(), "a,b\n");
        let _ = std::fs::remove_dir_all(dir.parent().unwrap());
    }

    #[test]
    fn write_csv_failure_names_the_path() {
        // Parent exists but is a *file*, so directory creation must fail
        // and the panic message must carry the path.
        let blocker = std::env::temp_dir().join("sb_bench_write_csv_blocker");
        std::fs::write(&blocker, "not a directory").unwrap();
        let path = blocker.join("out.csv");
        let err = std::panic::catch_unwind(|| write_csv(&path, |p| std::fs::write(p, "x")))
            .expect_err("writing under a file must fail");
        let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
        assert!(msg.contains(&blocker.display().to_string()), "panic message was: {msg}");
        let _ = std::fs::remove_file(&blocker);
    }
}
