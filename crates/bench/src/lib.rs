//! Shared helpers for the figure-regeneration binaries.
//!
//! Each paper figure has a binary (`fig6` … `fig9`) accepting
//! `--scale {paper,fast}` and `--seeds N`; this crate holds the argument
//! parsing and run-loop plumbing they share.

pub mod cells;

pub use sb_fleet::SweepCell;

use sb_fleet::ChaosPlan;
use sb_sim::engine::{self, AlgorithmKind, ExecOptions, PreparedNetwork};
use sb_sim::{
    DurabilityOptions, PreparedCache, RunMetrics, RunOutcome, ScenarioConfig, SearchKind,
};

/// Command-line options shared by every figure binary.
#[derive(Debug, Clone, PartialEq)]
pub struct FigureOptions {
    /// The scenario to run ("paper" or "fast").
    pub scenario: ScenarioConfig,
    /// Number of seeds per configuration (paper: 5).
    pub seeds: u64,
    /// Output directory for CSV files.
    pub out_dir: std::path::PathBuf,
    /// Checkpoint interval in slots for durable runs (`--checkpoint-every
    /// N`; `0` journals without checkpointing). `None` leaves durability
    /// off unless [`Self::resume_from`] turns it on.
    pub checkpoint_every: Option<usize>,
    /// Resume interrupted runs from this durability directory
    /// (`--resume DIR`).
    pub resume_from: Option<std::path::PathBuf>,
    /// Worker threads for [`run_cells`] (`--jobs N`; default: available
    /// parallelism). Cell *results* are ordered deterministically no matter
    /// how many workers run, so CSVs are byte-identical across values.
    pub jobs: usize,
    /// Worker threads for speculative slot-parallel quoting inside each
    /// CEAR admission (`--quote-threads N`; default 1 = serial). Quotes
    /// are bit-identical for every value, so CSVs never change with it.
    pub quote_threads: usize,
    /// Worker threads for each per-slot topology build inside `prepare`
    /// (`--build-threads N`; default: available parallelism). The built
    /// series is bit-identical for every value, so CSVs never change with
    /// it.
    pub build_threads: usize,
    /// Run the sweep across N worker *processes* via `sb-fleet`
    /// (`--fleet N`) instead of in-process threads. Results are
    /// byte-identical to `--jobs`; completed cells persist durably under
    /// `OUT/fleet/` so a killed sweep resumes where it stopped.
    pub fleet: Option<usize>,
    /// Fault-injection plan for `--fleet` runs (`--chaos SPEC`; see
    /// [`sb_fleet::ChaosPlan`] for the grammar). Ignored without
    /// `--fleet`.
    pub chaos: Option<ChaosPlan>,
    /// Shortest-path kernel inside every admission
    /// (`--search {reference,astar}`; default astar). Both kernels quote
    /// bit-identical paths, so CSVs never change with it — the flag exists
    /// so CI can prove exactly that by diffing the outputs.
    pub search: SearchKind,
}

impl Default for FigureOptions {
    fn default() -> Self {
        FigureOptions {
            scenario: ScenarioConfig::fast(),
            seeds: 3,
            out_dir: std::path::PathBuf::from("results"),
            checkpoint_every: None,
            resume_from: None,
            jobs: default_jobs(),
            quote_threads: 1,
            build_threads: default_jobs(),
            fleet: None,
            chaos: None,
            search: SearchKind::default(),
        }
    }
}

/// The default worker count: the host's available parallelism, 1 when it
/// cannot be determined.
pub fn default_jobs() -> usize {
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

/// Parses `--scale {paper,fast,tiny,mega,mega3}`, `--seeds N`, `--out DIR`,
/// `--checkpoint-every N`, `--resume DIR`, `--jobs N`,
/// `--quote-threads N`, `--build-threads N` and
/// `--search {reference,astar}` from an argument iterator.
///
/// `--scale paper` defaults the seed count to the paper's 5, but an
/// explicit `--seeds N` wins regardless of argument order.
///
/// # Panics
///
/// Panics with a usage message on unknown arguments, rejects `0` for
/// `--jobs`/`--quote-threads`/`--build-threads` instead of silently
/// flooring it — these are experiment drivers, not long-lived services,
/// and a zero thread count is a typo worth surfacing — and rejects an
/// unknown `--search` kind instead of defaulting it.
pub fn parse_args(args: impl Iterator<Item = String>) -> FigureOptions {
    let mut opts = FigureOptions::default();
    let mut seeds_given = false;
    let mut scale_paper = false;
    let mut args = args.peekable();
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--scale" => {
                let v = args.next().expect("--scale needs a value");
                opts.scenario = match v.as_str() {
                    "paper" => {
                        scale_paper = true;
                        ScenarioConfig::paper()
                    }
                    "fast" => {
                        scale_paper = false;
                        ScenarioConfig::fast()
                    }
                    "tiny" => {
                        scale_paper = false;
                        ScenarioConfig::tiny()
                    }
                    "mega" => {
                        scale_paper = false;
                        ScenarioConfig::mega()
                    }
                    "mega3" => {
                        scale_paper = false;
                        ScenarioConfig::mega3()
                    }
                    other => panic!("unknown scale `{other}` (use paper|fast|tiny|mega|mega3)"),
                };
            }
            "--seeds" => {
                opts.seeds =
                    args.next().and_then(|v| v.parse().ok()).expect("--seeds needs an integer");
                seeds_given = true;
            }
            "--out" => {
                opts.out_dir = args.next().expect("--out needs a path").into();
            }
            "--checkpoint-every" => {
                opts.checkpoint_every = Some(
                    args.next()
                        .and_then(|v| v.parse().ok())
                        .expect("--checkpoint-every needs an integer"),
                );
            }
            "--resume" => {
                opts.resume_from = Some(args.next().expect("--resume needs a directory").into());
            }
            "--jobs" => {
                opts.jobs = parse_at_least_one(args.next(), "--jobs");
            }
            "--quote-threads" => {
                opts.quote_threads = parse_at_least_one(args.next(), "--quote-threads");
            }
            "--build-threads" => {
                opts.build_threads = parse_at_least_one(args.next(), "--build-threads");
            }
            "--fleet" => {
                opts.fleet = Some(parse_at_least_one(args.next(), "--fleet"));
            }
            "--chaos" => {
                let spec = args.next().expect("--chaos needs a spec string");
                opts.chaos =
                    Some(ChaosPlan::parse(&spec).unwrap_or_else(|e| panic!("--chaos: {e}")));
            }
            "--search" => {
                let v = args.next().expect("--search needs a value (reference|astar)");
                opts.search = v.parse().unwrap_or_else(|e| panic!("--search: {e}"));
            }
            other => panic!(
                "unknown argument `{other}` (use --scale/--seeds/--out/--checkpoint-every\
                 /--resume/--jobs/--quote-threads/--build-threads/--fleet/--chaos/--search)"
            ),
        }
    }
    if scale_paper && !seeds_given {
        opts.seeds = 5;
    }
    opts
}

/// Parses a thread-count flag value, rejecting zero outright: a floored
/// `0` would silently serialize a sweep the user asked to parallelize.
fn parse_at_least_one(value: Option<String>, flag: &str) -> usize {
    let n: usize =
        value.and_then(|v| v.parse().ok()).unwrap_or_else(|| panic!("{flag} needs an integer"));
    assert!(n >= 1, "{flag} must be >= 1, got {n}");
    n
}

/// The shared prepared-network cache for one sweep, sized from the
/// command line: builds fan per-slot snapshot construction across
/// `--build-threads` workers, and the `(scenario-digest, seed)` keying
/// lets every cell of a comparison point share one build. Consult it from
/// inside the [`run_cells`] closure — concurrent `get`s for the same key
/// block on a single builder.
pub fn prepared_cache(opts: &FigureOptions) -> PreparedCache {
    PreparedCache::new(opts.build_threads)
}

/// Reports a sweep's cache tally to stderr, so a paper-scale run shows at
/// a glance how many prepares the cache saved.
pub fn report_cache(cache: &PreparedCache) {
    eprintln!(
        "prepared-network cache: {} hits, {} misses, {} distinct networks{}",
        cache.hits(),
        cache.misses(),
        cache.len(),
        if cache.is_disabled() { " (memoization disabled by SB_NO_PREPARE_CACHE)" } else { "" }
    );
}

/// Runs one `(cell, seed)` of a sweep, durably when the command line asked
/// for it.
///
/// Without `--checkpoint-every` or `--resume` this is a plain in-memory
/// [`engine::run_prepared`]. With either flag, the run is journaled and
/// checkpointed into a per-cell subdirectory (under `--resume DIR`, or
/// `OUT/durable` for a fresh durable run), and `--resume` picks up each
/// cell where the interrupted sweep left it — completed cells return their
/// cached metrics without re-running.
///
/// # Panics
///
/// Panics with the durable-run error (which names the offending file) when
/// journaling, checkpointing or resume fails.
pub fn run_cell(
    opts: &FigureOptions,
    scenario: &ScenarioConfig,
    prepared: &PreparedNetwork,
    requests: &[sb_demand::Request],
    kind: &AlgorithmKind,
    seed: u64,
    cell: &str,
) -> RunMetrics {
    let exec = ExecOptions { quote_threads: opts.quote_threads, search: opts.search };
    if opts.checkpoint_every.is_none() && opts.resume_from.is_none() {
        return engine::run_prepared_exec(scenario, prepared, requests, kind, seed, &exec);
    }
    let base = opts.resume_from.clone().unwrap_or_else(|| opts.out_dir.join("durable"));
    // Cell labels may carry '/' (model/policy); keep the directory flat.
    let safe: String = cell
        .chars()
        .map(|c| if c.is_ascii_alphanumeric() || matches!(c, '-' | '_' | '.') { c } else { '-' })
        .collect();
    let durability = DurabilityOptions {
        dir: base.join(format!("{safe}_s{seed}")),
        checkpoint_every: opts.checkpoint_every.unwrap_or(1),
        resume: opts.resume_from.is_some(),
        halt_before_slot: None,
        exec,
    };
    match sb_sim::run_durable(scenario, prepared, requests, kind, seed, &durability) {
        Ok(RunOutcome::Completed(metrics)) => *metrics,
        Ok(RunOutcome::Halted { next_slot }) => {
            unreachable!("no halt requested, yet halted before slot {next_slot}")
        }
        Err(e) => panic!("durable run failed for cell `{cell}` seed {seed}: {e}"),
    }
}

/// Fans the independent cells of a sweep across `jobs` worker threads and
/// returns the results **in cell order**, so downstream CSV writing is
/// byte-identical to a serial run no matter the worker count.
///
/// Workers pull cells from a shared atomic index (dynamic load balancing —
/// sweep cells vary wildly in cost across algorithms and failure
/// probabilities) and deposit each result into its cell's dedicated slot.
/// With `jobs <= 1` the cells run inline on the caller's thread with no
/// thread machinery at all.
///
/// # Panics
///
/// A panicking cell propagates: the scope joins every worker and re-raises
/// the panic, so a sweep never silently drops cells.
pub fn run_cells<I: Sync, T: Send>(
    jobs: usize,
    items: &[I],
    run: impl Fn(usize, &I) -> T + Sync,
) -> Vec<T> {
    let jobs = jobs.clamp(1, items.len().max(1));
    if jobs == 1 {
        return items.iter().enumerate().map(|(i, item)| run(i, item)).collect();
    }
    let next = std::sync::atomic::AtomicUsize::new(0);
    let slots: Vec<std::sync::Mutex<Option<T>>> =
        (0..items.len()).map(|_| std::sync::Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..jobs {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                if i >= items.len() {
                    break;
                }
                let result = run(i, &items[i]);
                *slots[i].lock().expect("result slot poisoned") = Some(result);
            });
        }
    });
    slots
        .into_iter()
        .map(|m| m.into_inner().expect("result slot poisoned").expect("worker filled every slot"))
        .collect()
}

/// Runs the cells of a sweep and returns their metrics **in cell order**.
///
/// This is the single dispatch point behind every figure binary's sweep:
///
/// * default — in-process across `--jobs` threads ([`run_cells`]), with
///   the shared `cache` and per-cell durability ([`run_cell`]);
/// * `--fleet N` — across N worker *processes* via
///   [`sb_fleet::run_fleet`], with per-cell durable results under
///   `OUT/fleet/` and optional `--chaos` fault injection.
///
/// Both paths compute bit-identical metrics, so the CSVs written from the
/// returned vector are byte-identical regardless of the dispatch mode,
/// worker count, kill schedule or resume point.
///
/// # Exits
///
/// Under `--fleet`, a quarantined cell terminates the process with exit
/// code 1 after printing the quarantine report (cell names plus the dead
/// workers' stderr tails), and a chaos-scripted coordinator exit
/// (`exit:after=N`) terminates with exit code 2 — rerun the same command
/// to resume from the durable results.
pub fn run_sweep(
    opts: &FigureOptions,
    cache: &PreparedCache,
    cells: &[SweepCell],
) -> Vec<RunMetrics> {
    let Some(workers) = opts.fleet else {
        return run_cells(opts.jobs, cells, |_, c| {
            let prepared = cache.get(&c.scenario, c.seed);
            let requests = engine::workload(&c.scenario, &prepared, c.seed);
            run_cell(opts, &c.scenario, &prepared, &requests, &c.kind, c.seed, &c.label)
        });
    };
    let mut fleet_opts = sb_fleet::FleetOptions::new(workers, opts.out_dir.join("fleet"));
    fleet_opts.quote_threads = opts.quote_threads;
    fleet_opts.build_threads = opts.build_threads;
    fleet_opts.search = opts.search;
    if let Some(plan) = &opts.chaos {
        fleet_opts.chaos = plan.clone();
    }
    match sb_fleet::run_fleet(cells, &fleet_opts) {
        Ok(sb_fleet::FleetOutcome::Completed(metrics)) => metrics,
        Ok(sb_fleet::FleetOutcome::Halted { completed_this_session }) => {
            eprintln!(
                "fleet: coordinator halted by chaos after {completed_this_session} cell(s); \
                 rerun the same command to resume"
            );
            std::process::exit(2);
        }
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(1);
        }
    }
}

/// Runs a CSV writer against `path`, creating the output directory first
/// and publishing the result **atomically**: the writer targets a
/// temporary file which is fsynced and renamed over `path` only on
/// success. A sweep that dies mid-write — or a writer that errors —
/// leaves any previous CSV at `path` byte-for-byte intact.
///
/// # Panics
///
/// Panics with the offending path when the directory cannot be created,
/// the writer reports an I/O error, or the final rename fails.
pub fn write_csv(
    path: &std::path::Path,
    write: impl FnOnce(&std::path::Path) -> std::io::Result<()>,
) {
    if let Some(parent) = path.parent() {
        std::fs::create_dir_all(parent)
            .unwrap_or_else(|e| panic!("cannot create output directory {}: {e}", parent.display()));
    }
    let mut tmp = path.as_os_str().to_owned();
    tmp.push(".tmp");
    let tmp = std::path::PathBuf::from(tmp);
    if let Err(e) = write(&tmp) {
        let _ = std::fs::remove_file(&tmp);
        panic!("cannot write {}: {e}", path.display());
    }
    // Make the bytes durable before the rename makes them visible.
    match std::fs::File::open(&tmp).and_then(|f| f.sync_all()) {
        Ok(()) => {}
        Err(e) => {
            let _ = std::fs::remove_file(&tmp);
            panic!("cannot sync {}: {e}", tmp.display());
        }
    }
    std::fs::rename(&tmp, path)
        .unwrap_or_else(|e| panic!("cannot publish {}: {e}", path.display()));
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(v: &[&str]) -> FigureOptions {
        parse_args(v.iter().map(|s| s.to_string()))
    }

    #[test]
    fn defaults() {
        let o = parse(&[]);
        assert_eq!(o.scenario.name, "fast");
        assert_eq!(o.seeds, 3);
    }

    #[test]
    fn paper_scale_sets_five_seeds() {
        let o = parse(&["--scale", "paper"]);
        assert_eq!(o.scenario.name, "paper");
        assert_eq!(o.seeds, 5);
    }

    #[test]
    fn explicit_seeds_override() {
        let o = parse(&["--scale", "paper", "--seeds", "2"]);
        assert_eq!(o.seeds, 2);
    }

    #[test]
    fn explicit_seeds_survive_later_paper_scale() {
        // Regression: `--seeds 10 --scale paper` used to clobber the seed
        // count back to the paper default of 5.
        let o = parse(&["--seeds", "10", "--scale", "paper"]);
        assert_eq!(o.scenario.name, "paper");
        assert_eq!(o.seeds, 10);
    }

    #[test]
    fn jobs_flag_parses_and_defaults() {
        assert_eq!(parse(&["--jobs", "4"]).jobs, 4);
        assert!(parse(&[]).jobs >= 1);
    }

    #[test]
    #[should_panic(expected = "--jobs must be >= 1")]
    fn zero_jobs_is_rejected_not_floored() {
        parse(&["--jobs", "0"]);
    }

    #[test]
    fn quote_threads_flag_parses_and_defaults() {
        assert_eq!(parse(&["--quote-threads", "4"]).quote_threads, 4);
        assert_eq!(parse(&[]).quote_threads, 1);
    }

    #[test]
    #[should_panic(expected = "--quote-threads must be >= 1")]
    fn zero_quote_threads_is_rejected_not_floored() {
        parse(&["--quote-threads", "0"]);
    }

    #[test]
    fn build_threads_flag_parses_and_defaults() {
        assert_eq!(parse(&["--build-threads", "4"]).build_threads, 4);
        assert!(parse(&[]).build_threads >= 1);
    }

    #[test]
    #[should_panic(expected = "--build-threads must be >= 1")]
    fn zero_build_threads_is_rejected_not_floored() {
        parse(&["--build-threads", "0"]);
    }

    #[test]
    fn search_flag_parses_and_defaults_to_astar() {
        assert_eq!(parse(&["--search", "reference"]).search, SearchKind::Reference);
        assert_eq!(parse(&["--search", "astar"]).search, SearchKind::Astar);
        assert_eq!(parse(&[]).search, SearchKind::Astar);
    }

    #[test]
    #[should_panic(expected = "unknown search kind")]
    fn bogus_search_is_rejected_not_defaulted() {
        parse(&["--search", "dijkstra"]);
    }

    #[test]
    fn run_cells_preserves_cell_order() {
        let items: Vec<usize> = (0..37).collect();
        let serial = run_cells(1, &items, |i, &x| (i, x * x));
        for jobs in [2, 3, 8, 64] {
            let parallel = run_cells(jobs, &items, |i, &x| {
                // Jitter completion order so slots genuinely race.
                std::thread::sleep(std::time::Duration::from_micros(((x * 7) % 5) as u64 * 100));
                (i, x * x)
            });
            assert_eq!(parallel, serial, "jobs={jobs}");
        }
    }

    #[test]
    fn run_cells_handles_empty_input() {
        let out: Vec<u32> = run_cells(8, &[] as &[u32], |_, &x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn run_cells_propagates_worker_panics() {
        let items: Vec<usize> = (0..8).collect();
        let r = std::panic::catch_unwind(|| {
            run_cells(4, &items, |_, &x| {
                if x == 5 {
                    panic!("cell 5 exploded");
                }
                x
            })
        });
        assert!(r.is_err(), "a panicking cell must fail the sweep");
    }

    #[test]
    fn mega_scale_selects_multi_shell_preset() {
        let o = parse(&["--scale", "mega"]);
        assert_eq!(o.scenario.name, "mega");
        assert!(o.scenario.total_satellites() >= 10_000);
        assert!(!o.scenario.extra_shells.is_empty());
        assert_eq!(o.seeds, FigureOptions::default().seeds);
    }

    #[test]
    fn mega3_scale_selects_the_three_shell_preset() {
        let o = parse(&["--scale", "mega3"]);
        assert_eq!(o.scenario.name, "mega3");
        assert!(o.scenario.total_satellites() >= 30_000);
        assert_eq!(o.scenario.extra_shells.len(), 2);
    }

    #[test]
    #[should_panic(expected = "unknown scale")]
    fn bad_scale_panics() {
        let _ = parse(&["--scale", "warp"]);
    }

    #[test]
    #[should_panic(expected = "unknown argument")]
    fn bad_flag_panics() {
        let _ = parse(&["--frobnicate"]);
    }

    #[test]
    fn fleet_flag_parses_and_defaults_off() {
        assert_eq!(parse(&["--fleet", "4"]).fleet, Some(4));
        assert_eq!(parse(&[]).fleet, None);
    }

    #[test]
    #[should_panic(expected = "--fleet must be >= 1")]
    fn zero_fleet_is_rejected() {
        parse(&["--fleet", "0"]);
    }

    #[test]
    fn chaos_flag_parses_a_plan() {
        let o = parse(&["--chaos", "kill:cell=3;exit:after=2"]);
        let plan = o.chaos.expect("plan parsed");
        assert!(plan.has_worker_chaos());
        assert_eq!(plan.exit_after, Some(2));
        assert_eq!(parse(&[]).chaos, None);
    }

    #[test]
    #[should_panic(expected = "unknown directive")]
    fn bad_chaos_spec_panics_with_the_directive() {
        parse(&["--chaos", "explode:cell=1"]);
    }

    #[test]
    fn write_csv_creates_missing_directories() {
        let dir = std::env::temp_dir().join("sb_bench_write_csv_test").join("nested");
        let path = dir.join("out.csv");
        let _ = std::fs::remove_dir_all(dir.parent().unwrap());
        write_csv(&path, |p| std::fs::write(p, "a,b\n"));
        assert_eq!(std::fs::read_to_string(&path).unwrap(), "a,b\n");
        let _ = std::fs::remove_dir_all(dir.parent().unwrap());
    }

    #[test]
    fn write_csv_failure_names_the_path() {
        // Parent exists but is a *file*, so directory creation must fail
        // and the panic message must carry the path.
        let blocker = std::env::temp_dir().join("sb_bench_write_csv_blocker");
        std::fs::write(&blocker, "not a directory").unwrap();
        let path = blocker.join("out.csv");
        let err = std::panic::catch_unwind(|| write_csv(&path, |p| std::fs::write(p, "x")))
            .expect_err("writing under a file must fail");
        let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
        assert!(msg.contains(&blocker.display().to_string()), "panic message was: {msg}");
        let _ = std::fs::remove_file(&blocker);
    }

    #[test]
    fn write_csv_failure_leaves_previous_file_intact() {
        // Regression: a writer that dies mid-CSV must not clobber the
        // previous sweep's output. The atomic temp+rename publish means
        // the old bytes survive and no temp litter remains.
        let dir = std::env::temp_dir().join("sb_bench_write_csv_atomic");
        let _ = std::fs::remove_dir_all(&dir);
        let path = dir.join("out.csv");
        write_csv(&path, |p| std::fs::write(p, "old,complete\n1,2\n"));

        let err = std::panic::catch_unwind(|| {
            write_csv(&path, |p| {
                // Simulate a crash after a partial write.
                std::fs::write(p, "new,truncated")?;
                Err(std::io::Error::other("simulated mid-write failure"))
            })
        })
        .expect_err("failing writer must panic");
        let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
        assert!(msg.contains("simulated mid-write failure"), "panic message was: {msg}");

        assert_eq!(
            std::fs::read_to_string(&path).unwrap(),
            "old,complete\n1,2\n",
            "previous CSV must survive a failed rewrite byte-for-byte"
        );
        let leftovers: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().file_name().into_string().unwrap())
            .filter(|n| n != "out.csv")
            .collect();
        assert!(leftovers.is_empty(), "no temp litter, got {leftovers:?}");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
