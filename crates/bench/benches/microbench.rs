//! Criterion micro-benchmarks for the performance-critical kernels:
//! snapshot construction, the pricing search, energy-ledger recursion and
//! an end-to-end tiny simulation.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use sb_cear::{Cear, CearParams, Decision, NetworkState, RoutingAlgorithm};
use sb_demand::{RateProfile, Request, RequestId};
use sb_energy::{EnergyLedger, EnergyParams};
use sb_geo::coords::Geodetic;
use sb_geo::Epoch;
use sb_orbit::walker::WalkerConstellation;
use sb_sim::engine::{self, AlgorithmKind};
use sb_sim::ScenarioConfig;
use sb_topology::series::build_snapshot;
use sb_topology::{NetworkNodes, SlotIndex, TopologyConfig, TopologySeries};

fn network() -> (NetworkState, sb_topology::NodeId, sb_topology::NodeId) {
    let shell = WalkerConstellation::delta(16, 16, 5, 550e3, 53f64.to_radians());
    let mut nodes = NetworkNodes::from_walker(&shell);
    let a = nodes.add_ground_site(Geodetic::from_degrees(35.8, -78.6, 0.0));
    let b = nodes.add_ground_site(Geodetic::from_degrees(48.9, 2.3, 0.0));
    let cfg = TopologyConfig { min_elevation_rad: 15f64.to_radians(), ..TopologyConfig::default() };
    let series = TopologySeries::build(&nodes, &cfg, 10, 60.0);
    (NetworkState::new(series, &EnergyParams::default()), a, b)
}

fn bench_snapshot_build(c: &mut Criterion) {
    let shell = WalkerConstellation::starlink_shell1();
    let mut nodes = NetworkNodes::from_walker(&shell);
    nodes.add_ground_site(Geodetic::from_degrees(35.8, -78.6, 0.0));
    nodes.add_ground_site(Geodetic::from_degrees(48.9, 2.3, 0.0));
    let cfg = TopologyConfig::default();
    c.bench_function("snapshot_build_1584sats", |b| {
        b.iter(|| build_snapshot(&nodes, &cfg, SlotIndex(0), Epoch::from_seconds(0.0)))
    });
}

fn bench_series_build(c: &mut Criterion) {
    // The full horizon build, serially and fanned across the host's
    // cores — the two are bit-identical, so this measures exactly what
    // `--build-threads` buys on a 256-sat shell.
    let shell = WalkerConstellation::delta(16, 16, 5, 550e3, 53f64.to_radians());
    let mut nodes = NetworkNodes::from_walker(&shell);
    nodes.add_ground_site(Geodetic::from_degrees(35.8, -78.6, 0.0));
    nodes.add_ground_site(Geodetic::from_degrees(48.9, 2.3, 0.0));
    let cfg = TopologyConfig::default();
    c.bench_function("series_build_serial_24slots_256sats", |b| {
        b.iter(|| TopologySeries::build(&nodes, &cfg, 24, 60.0))
    });
    let threads = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    c.bench_function("series_build_parallel_24slots_256sats", |b| {
        b.iter(|| TopologySeries::build_par(&nodes, &cfg, 24, 60.0, threads))
    });
}

fn bench_cear_decision(c: &mut Criterion) {
    let (state, src, dst) = network();
    let request = Request {
        id: RequestId(0),
        source: src,
        destination: dst,
        rate: RateProfile::Constant(1250.0),
        start: SlotIndex(0),
        end: SlotIndex(4),
        valuation: 2.3e9,
    };
    c.bench_function("cear_process_5slot_request_256sats", |b| {
        b.iter_batched(
            || (state.clone(), Cear::new(CearParams::default())),
            |(mut st, mut cear)| {
                let d = cear.process(&request, &mut st);
                assert!(matches!(d, Decision::Accepted { .. } | Decision::Rejected { .. }));
            },
            BatchSize::SmallInput,
        )
    });
}

fn bench_energy_recursion(c: &mut Criterion) {
    let params = EnergyParams::default();
    // One satellite, 384 slots alternating a 60/36 sunlit/umbra cycle.
    let profile: Vec<bool> = (0..384).map(|t| t % 96 < 60).collect();
    let ledger = EnergyLedger::new(&params, 60.0, &[profile]);
    c.bench_function("ledger_peek_deep_deficit", |b| b.iter(|| ledger.peek(0, 60, 50_000.0)));
    c.bench_function("ledger_commit_deep_deficit", |b| {
        b.iter_batched(|| ledger.clone(), |mut l| l.commit(0, 60, 50_000.0), BatchSize::SmallInput)
    });
}

fn bench_tiny_end_to_end(c: &mut Criterion) {
    let scenario = ScenarioConfig::tiny();
    let prepared = engine::prepare(&scenario, 0);
    let requests = engine::workload(&scenario, &prepared, 0);
    c.bench_function("end_to_end_tiny_cear", |b| {
        b.iter(|| {
            engine::run_prepared(
                &scenario,
                &prepared,
                &requests,
                &AlgorithmKind::Cear(CearParams::default()),
                0,
            )
        })
    });
}

fn bench_ground_grid(c: &mut Criterion) {
    c.bench_function("ground_grid_generate_sub3", |b| {
        b.iter(|| sb_topology::ground::GroundGrid::generate(3, 400))
    });
}

fn bench_tle_parse(c: &mut Criterion) {
    let l1 = "1 25544U 98067A   24001.50000000  .00016717  00000-0  10270-3 0  9009";
    let l2 = "2 25544  51.6400 208.9163 0006317  69.9862 290.2553 15.49560532    00";
    c.bench_function("tle_parse", |b| b.iter(|| sb_orbit::tle::Tle::parse("ISS", l1, l2).unwrap()));
}

fn bench_coverage(c: &mut Criterion) {
    let shell = WalkerConstellation::delta(16, 16, 5, 550e3, 53f64.to_radians());
    let constellation = sb_orbit::Constellation::from_walker(&shell);
    c.bench_function("global_coverage_256sats", |b| {
        b.iter(|| {
            sb_topology::coverage::global_coverage(
                &constellation,
                Epoch::from_seconds(0.0),
                25f64.to_radians(),
            )
        })
    });
}

fn bench_failure_injection(c: &mut Criterion) {
    let (state, _, _) = network();
    let snap = state.series().snapshot(SlotIndex(0)).clone();
    let model = sb_topology::failures::LinkFailureModel::new(0.05, 7);
    c.bench_function("failure_apply_256sats", |b| b.iter(|| model.apply(&snap)));
}

fn bench_search_arena(c: &mut Criterion) {
    use sb_cear::search::{min_cost_path, min_cost_path_in};
    let (state, src, dst) = network();
    let snap = state.series().snapshot(SlotIndex(0));
    let weight = |ctx: &sb_cear::search::EdgeContext<'_>| Some(1.0 + ctx.edge.length_m * 1e-9);
    c.bench_function("search_fresh_alloc_256sats", |b| {
        b.iter(|| min_cost_path(snap, src, dst, weight))
    });
    let mut scratch = sb_cear::SearchScratch::new();
    c.bench_function("search_arena_reuse_256sats", |b| {
        b.iter(|| min_cost_path_in(&mut scratch, snap, src, dst, weight))
    });
}

fn bench_search_kernels(c: &mut Criterion) {
    // The three bit-identical search kernels on one 256-sat snapshot:
    // plain Dijkstra, goal-directed A\* under the hop-bound heuristic, and
    // a `path_via_tree` read of a pre-settled tree (the SPT-cache hit
    // path). Weight ≥ 1 per edge, so BFS hop counts × 0.999 are an
    // admissible, consistent heuristic.
    use sb_cear::search::{
        min_cost_path_in, min_cost_path_with, path_via_tree, settle_tree_in, HopBoundHeuristic,
    };
    let (state, src, dst) = network();
    let snap = state.series().snapshot(SlotIndex(0));
    let weight = |ctx: &sb_cear::search::EdgeContext<'_>| Some(1.0 + ctx.edge.length_m * 1e-9);
    let mut scratch = sb_cear::SearchScratch::new();
    c.bench_function("search_kernel_dijkstra_256sats", |b| {
        b.iter(|| min_cost_path_in(&mut scratch, snap, src, dst, weight))
    });
    let mut adj: Vec<Vec<usize>> = vec![Vec::new(); snap.num_nodes()];
    for edge in snap.edges() {
        adj[edge.src.index()].push(edge.dst.index());
        adj[edge.dst.index()].push(edge.src.index());
    }
    let mut hops = vec![u32::MAX; snap.num_nodes()];
    let mut queue = std::collections::VecDeque::from([dst.index()]);
    hops[dst.index()] = 0;
    while let Some(u) = queue.pop_front() {
        for &v in &adj[u] {
            if hops[v] == u32::MAX {
                hops[v] = hops[u] + 1;
                queue.push_back(v);
            }
        }
    }
    hops.iter_mut().for_each(|h| {
        if *h == u32::MAX {
            *h = 0;
        }
    });
    let heuristic = HopBoundHeuristic { hops_lb: &hops, unit: 0.999 };
    c.bench_function("search_kernel_astar_256sats", |b| {
        b.iter(|| min_cost_path_with(&mut scratch, snap, src, dst, &heuristic, weight))
    });
    let tree = settle_tree_in(&mut scratch, snap, src, weight);
    c.bench_function("search_kernel_tree_read_256sats", |b| {
        b.iter(|| path_via_tree(&tree, snap, src, dst, weight))
    });
}

fn bench_quote_search_kinds(c: &mut Criterion) {
    // A full 5-slot CEAR quote under each search kernel — what the
    // `--search` flag changes end to end (results are bit-identical).
    let (state, src, dst) = network();
    let request = Request {
        id: RequestId(0),
        source: src,
        destination: dst,
        rate: RateProfile::Constant(1250.0),
        start: SlotIndex(0),
        end: SlotIndex(4),
        valuation: 2.3e9,
    };
    let reference = Cear::new(CearParams::default()).with_search(sb_cear::SearchKind::Reference);
    c.bench_function("quote_5slot_search_reference", |b| {
        b.iter(|| reference.quote(&request, &state))
    });
    let astar = Cear::new(CearParams::default());
    c.bench_function("quote_5slot_search_astar", |b| b.iter(|| astar.quote(&request, &state)));
}

fn bench_price_cache(c: &mut Criterion) {
    use sb_cear::pricing;
    let (state, _, _) = network();
    let params = CearParams::default();
    let slot = SlotIndex(0);
    let n_edges = state.series().snapshot(slot).num_edges();
    c.bench_function("unit_price_powf_all_edges", |b| {
        b.iter(|| {
            (0..n_edges)
                .map(|e| {
                    let id = sb_topology::graph::EdgeId(e as u32);
                    pricing::unit_price(params.mu1(), state.utilization(slot, id))
                })
                .sum::<f64>()
        })
    });
    let mut cache = sb_cear::PriceCache::new(params.mu1(), params.mu2());
    c.bench_function("unit_price_cached_all_edges", |b| {
        b.iter(|| {
            (0..n_edges)
                .map(|e| cache.link_unit_price(&state, slot, sb_topology::graph::EdgeId(e as u32)))
                .sum::<f64>()
        })
    });
}

fn bench_single_slot_admission(c: &mut Criterion) {
    let (state, src, dst) = network();
    let request = Request {
        id: RequestId(0),
        source: src,
        destination: dst,
        rate: RateProfile::Constant(1250.0),
        start: SlotIndex(0),
        end: SlotIndex(0),
        valuation: 2.3e9,
    };
    c.bench_function("admission_1slot_reference", |b| {
        b.iter_batched(
            || (state.clone(), Cear::reference(CearParams::default())),
            |(mut st, mut cear)| {
                let d = cear.process(&request, &mut st);
                assert!(matches!(d, Decision::Accepted { .. } | Decision::Rejected { .. }));
            },
            BatchSize::SmallInput,
        )
    });
    c.bench_function("admission_1slot_cached", |b| {
        b.iter_batched(
            || (state.clone(), Cear::new(CearParams::default())),
            |(mut st, mut cear)| {
                let d = cear.process(&request, &mut st);
                assert!(matches!(d, Decision::Accepted { .. } | Decision::Rejected { .. }));
            },
            BatchSize::SmallInput,
        )
    });
}

fn bench_parallel_quote(c: &mut Criterion) {
    // The speculative slot-parallel quote vs the serial chain on a
    // 10-slot request (quotes only — no commit — so one state serves
    // every iteration). Both variants return bit-identical results; the
    // benchmark measures what the parallelism buys.
    let (state, src, dst) = network();
    let request = Request {
        id: RequestId(0),
        source: src,
        destination: dst,
        rate: RateProfile::Constant(1250.0),
        start: SlotIndex(0),
        end: SlotIndex(9),
        valuation: 2.3e9,
    };
    let serial = Cear::new(CearParams::default());
    c.bench_function("quote_10slot_serial", |b| b.iter(|| serial.quote(&request, &state)));
    let threads = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    let parallel = Cear::new(CearParams::default()).with_quote_threads(threads);
    c.bench_function("quote_10slot_parallel", |b| b.iter(|| parallel.quote(&request, &state)));
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_snapshot_build, bench_series_build, bench_cear_decision, bench_energy_recursion,
              bench_tiny_end_to_end, bench_ground_grid, bench_tle_parse,
              bench_coverage, bench_failure_injection, bench_search_arena,
              bench_search_kernels, bench_quote_search_kinds,
              bench_price_cache, bench_single_slot_admission, bench_parallel_quote
}
criterion_main!(benches);
