//! Validated CLI parsing for the `sb-serve` binary.
//!
//! Unlike a "forgiving" parser that silently clamps nonsense values,
//! every flag here is range-checked and an offending value is reported —
//! a service started with `--workers 0` would deadlock, so it must not
//! start at all.

use std::path::PathBuf;

/// Parsed and validated `sb-serve` flags.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServeArgs {
    /// `--dir`: working directory for the WAL, checkpoints, and outputs.
    pub dir: PathBuf,
    /// `--scale`: `tiny` or `fast` scenario.
    pub scale: String,
    /// `--seed`: workload seed.
    pub seed: u64,
    /// `--requests`: cap on the number of requests submitted (default:
    /// the scenario's whole workload).
    pub requests: Option<usize>,
    /// `--workers`: quote worker threads (≥ 1).
    pub workers: usize,
    /// `--queue-depth`: maximum undecided requests (≥ 1).
    pub queue_depth: usize,
    /// `--retry-limit`: quote attempts per request (≥ 1).
    pub retry_limit: u32,
    /// `--checkpoint-every`: decisions between checkpoints (0 disables).
    pub checkpoint_every: u64,
    /// `--deadline-us`: per-request service deadline (absent: none).
    pub deadline_us: Option<u64>,
    /// `--throttle-us`: sleep between submissions (0: none).
    pub throttle_us: u64,
    /// `--resume`: recover from the directory's WAL and checkpoints
    /// instead of starting fresh.
    pub resume: bool,
}

impl Default for ServeArgs {
    fn default() -> Self {
        ServeArgs {
            dir: PathBuf::from("serve_out"),
            scale: "tiny".to_owned(),
            seed: 0,
            requests: None,
            workers: 2,
            queue_depth: 64,
            retry_limit: 3,
            checkpoint_every: 0,
            deadline_us: None,
            throttle_us: 0,
            resume: false,
        }
    }
}

/// Parses `sb-serve` flags, validating every range.
///
/// # Errors
///
/// A human-readable message naming the offending flag: unknown flags,
/// missing or unparseable values, `--scale` outside `tiny|fast`, and
/// zero values for `--workers`, `--queue-depth`, or `--retry-limit`.
pub fn parse_serve_args(args: impl Iterator<Item = String>) -> Result<ServeArgs, String> {
    let mut out = ServeArgs::default();
    let mut args = args.peekable();
    while let Some(flag) = args.next() {
        let mut value = |flag: &str| args.next().ok_or_else(|| format!("{flag} requires a value"));
        match flag.as_str() {
            "--dir" => out.dir = PathBuf::from(value("--dir")?),
            "--scale" => {
                let v = value("--scale")?;
                if v != "tiny" && v != "fast" {
                    return Err(format!("--scale must be tiny or fast, got `{v}`"));
                }
                out.scale = v;
            }
            "--seed" => out.seed = parse_num(&value("--seed")?, "--seed")?,
            "--requests" => {
                out.requests = Some(parse_num::<usize>(&value("--requests")?, "--requests")?);
            }
            "--workers" => {
                out.workers = parse_at_least_one(&value("--workers")?, "--workers")?;
            }
            "--queue-depth" => {
                out.queue_depth = parse_at_least_one(&value("--queue-depth")?, "--queue-depth")?;
            }
            "--retry-limit" => {
                out.retry_limit =
                    parse_at_least_one::<u32>(&value("--retry-limit")?, "--retry-limit")?;
            }
            "--checkpoint-every" => {
                out.checkpoint_every =
                    parse_num(&value("--checkpoint-every")?, "--checkpoint-every")?;
            }
            "--deadline-us" => {
                out.deadline_us = Some(parse_num(&value("--deadline-us")?, "--deadline-us")?);
            }
            "--throttle-us" => {
                out.throttle_us = parse_num(&value("--throttle-us")?, "--throttle-us")?;
            }
            "--resume" => out.resume = true,
            other => return Err(format!("unknown flag `{other}`")),
        }
    }
    Ok(out)
}

fn parse_num<T: std::str::FromStr>(text: &str, flag: &str) -> Result<T, String> {
    text.parse().map_err(|_| format!("{flag}: cannot parse `{text}`"))
}

fn parse_at_least_one<T>(text: &str, flag: &str) -> Result<T, String>
where
    T: std::str::FromStr + PartialOrd + From<u8>,
{
    let v: T = parse_num(text, flag)?;
    if v < T::from(1u8) {
        return Err(format!("{flag} must be >= 1, got {text}"));
    }
    Ok(v)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> Result<ServeArgs, String> {
        parse_serve_args(args.iter().map(|s| (*s).to_owned()))
    }

    #[test]
    fn defaults_and_full_flag_set() {
        assert_eq!(parse(&[]).unwrap(), ServeArgs::default());
        let got = parse(&[
            "--dir",
            "out",
            "--scale",
            "fast",
            "--seed",
            "9",
            "--requests",
            "50",
            "--workers",
            "4",
            "--queue-depth",
            "8",
            "--retry-limit",
            "2",
            "--checkpoint-every",
            "10",
            "--deadline-us",
            "500",
            "--throttle-us",
            "250",
            "--resume",
        ])
        .unwrap();
        assert_eq!(got.dir, PathBuf::from("out"));
        assert_eq!(got.scale, "fast");
        assert_eq!(got.seed, 9);
        assert_eq!(got.requests, Some(50));
        assert_eq!(got.workers, 4);
        assert_eq!(got.queue_depth, 8);
        assert_eq!(got.retry_limit, 2);
        assert_eq!(got.checkpoint_every, 10);
        assert_eq!(got.deadline_us, Some(500));
        assert_eq!(got.throttle_us, 250);
        assert!(got.resume);
    }

    #[test]
    fn zero_workers_is_rejected_not_floored() {
        let err = parse(&["--workers", "0"]).unwrap_err();
        assert!(err.contains("--workers must be >= 1"), "{err}");
    }

    #[test]
    fn zero_queue_depth_is_rejected_not_floored() {
        let err = parse(&["--queue-depth", "0"]).unwrap_err();
        assert!(err.contains("--queue-depth must be >= 1"), "{err}");
    }

    #[test]
    fn zero_retry_limit_is_rejected_not_floored() {
        let err = parse(&["--retry-limit", "0"]).unwrap_err();
        assert!(err.contains("--retry-limit must be >= 1"), "{err}");
    }

    #[test]
    fn malformed_inputs_are_named() {
        assert!(parse(&["--scale", "huge"]).unwrap_err().contains("--scale"));
        assert!(parse(&["--seed"]).unwrap_err().contains("requires a value"));
        assert!(parse(&["--seed", "abc"]).unwrap_err().contains("cannot parse"));
        assert!(parse(&["--frobnicate"]).unwrap_err().contains("unknown flag"));
    }
}
