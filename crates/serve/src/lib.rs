//! `sb-serve` — a fault-tolerant *online* admission service wrapping the
//! CEAR algorithm of *Space Booking: Enabling Performance-Critical
//! Applications in Broadband Satellite Networks* (ICDCS 2025).
//!
//! The batch engine in `sb-sim` processes a known request stream slot by
//! slot. A real operator instead runs a long-lived service: requests
//! arrive concurrently, quotes are expensive, and the process can be
//! killed at any moment. This crate provides that service shape while
//! preserving the algorithmic contract — the decision stream a live
//! service produces is *bit-identical* to serially running CEAR over the
//! same requests in commit order.
//!
//! # Architecture
//!
//! * **Optimistic parallel quoting** — quote workers price requests
//!   concurrently against a shared [`sb_cear::NetworkState`] under a read
//!   lock, recording the bandwidth/battery *epochs* of every cell the
//!   search touched in an [`sb_cear::EpochReadSet`].
//! * **Single ordering committer** — one thread commits strictly in
//!   submission order. Before committing a quote it revalidates the read
//!   set against the current epochs; a stale quote is bounced back for a
//!   requote with decorrelated-jitter backoff, and after `retry_limit`
//!   attempts the request is shed honestly
//!   ([`sb_sim::journal::ShedReason::RetriesExhausted`]).
//! * **Write-ahead logging** — every decision is appended to an
//!   [`sb_sim::journal::Journal`] (the engine's journal format, including
//!   fsync) *before* the client is acked, so an ack implies durability.
//!   [`wal::replay`] folds a scanned WAL (plus an optional
//!   [`sb_sim::checkpoint`] snapshot) back into the exact pre-crash
//!   state.
//! * **Overload shedding** — the admission queue is bounded; when full,
//!   the lowest value-density request is shed
//!   ([`sb_sim::journal::ShedReason::QueueFull`]), and requests whose
//!   service deadline lapses are shed without quoting
//!   ([`sb_sim::journal::ShedReason::DeadlineExceeded`]). Under sustained
//!   overload the service enters *degraded mode*: workers pause and the
//!   committer itself quotes serially (uncached reference path), shrinking
//!   the window between quote and commit to zero.
//!
//! # Modules
//!
//! * [`service`] — the service itself: [`AdmissionService`], tickets,
//!   acks, drain;
//! * [`wal`] — checkpoint payload format and WAL replay for recovery;
//! * [`proto`] — the framed submit/ack wire protocol;
//! * [`args`] — validated CLI flag parsing for the `sb-serve` binary;
//! * [`engine`] — [`engine::ServedCear`], a [`sb_cear::RoutingAlgorithm`]
//!   adapter that routes every decision through a live service, proving
//!   service/batch equivalence at the `RunMetrics` level.

#![warn(missing_docs)]

pub mod args;
pub mod engine;
pub mod proto;
pub mod service;
#[cfg(test)]
pub(crate) mod testutil;
pub mod wal;

pub use engine::{run_served, ServedCear};
pub use service::{Ack, AckBody, AdmissionService, DrainReport, ServeStats, Ticket};

use sb_cear::CearParams;
use std::fmt;
use std::time::Duration;

/// Configuration for one [`AdmissionService`] instance.
///
/// Construct with [`ServeConfig::new`] and adjust fields; the service
/// validates the whole struct at startup (see [`ServeConfig::validate`]).
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Quote worker threads (≥ 1).
    pub workers: usize,
    /// Maximum undecided requests (submitted but not yet written to the
    /// WAL) before the lowest value-density candidate is shed (≥ 1).
    pub queue_depth: usize,
    /// Quote attempts per request (≥ 1); conflict number `retry_limit`
    /// sheds the request with `RetriesExhausted`.
    pub retry_limit: u32,
    /// Base backoff before a bounced requote, microseconds.
    pub backoff_base_us: u64,
    /// Backoff ceiling, microseconds (≥ `backoff_base_us`).
    pub backoff_cap_us: u64,
    /// Per-request service deadline; `None` disables deadline shedding.
    pub deadline: Option<Duration>,
    /// Occupancy at which degraded mode engages (> `degraded_exit`).
    pub degraded_enter: usize,
    /// Occupancy at or below which degraded mode disengages.
    pub degraded_exit: usize,
    /// Write a checkpoint every this many decisions (0 disables; only
    /// effective when the service is given a checkpoint directory).
    pub checkpoint_every: u64,
    /// Seed for the backoff jitter stream.
    pub seed: u64,
    /// Config digest recorded in the WAL's `RunStart`; recovery refuses a
    /// WAL carrying a different digest.
    pub digest: u64,
    /// CEAR pricing parameters.
    pub params: CearParams,
}

impl ServeConfig {
    /// A ready-to-run configuration: 2 workers, queue depth 64, 3 quote
    /// attempts, 50 µs–5 ms backoff, no deadline, degraded mode between
    /// 3/4 and 1/4 occupancy, checkpointing off.
    pub fn new(digest: u64, seed: u64) -> Self {
        ServeConfig {
            workers: 2,
            queue_depth: 64,
            retry_limit: 3,
            backoff_base_us: 50,
            backoff_cap_us: 5_000,
            deadline: None,
            degraded_enter: 48,
            degraded_exit: 16,
            checkpoint_every: 0,
            seed,
            digest,
            params: CearParams::default(),
        }
    }

    /// Checks every field range.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::Config`] naming the first offending field.
    pub fn validate(&self) -> Result<(), ServeError> {
        let fail = |msg: String| Err(ServeError::Config(msg));
        if self.workers == 0 {
            return fail("workers must be >= 1".to_owned());
        }
        if self.queue_depth == 0 {
            return fail("queue_depth must be >= 1".to_owned());
        }
        if self.retry_limit == 0 {
            return fail("retry_limit must be >= 1".to_owned());
        }
        if self.backoff_cap_us < self.backoff_base_us {
            return fail(format!(
                "backoff_cap_us ({}) must be >= backoff_base_us ({})",
                self.backoff_cap_us, self.backoff_base_us
            ));
        }
        if self.degraded_enter <= self.degraded_exit {
            return fail(format!(
                "degraded_enter ({}) must be > degraded_exit ({})",
                self.degraded_enter, self.degraded_exit
            ));
        }
        Ok(())
    }
}

/// Everything that can go wrong starting, using, or recovering the
/// service.
#[derive(Debug)]
pub enum ServeError {
    /// A configuration field is out of range.
    Config(String),
    /// An IO failure outside the WAL (checkpoint directory, scan).
    Io(std::io::Error),
    /// A WAL or checkpoint decodes to something structurally impossible
    /// (e.g. an admission that no longer commits on replay).
    Corrupt(String),
    /// The WAL belongs to a different scenario/seed.
    DigestMismatch {
        /// The digest this service was configured with.
        expected: u64,
        /// The digest found in the WAL's `RunStart`.
        found: u64,
    },
    /// The service halted after a WAL or checkpoint write failure; the
    /// payload is the original failure message.
    Dead(String),
    /// The service is draining and no longer accepts submissions.
    Draining,
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Config(msg) => write!(f, "invalid service configuration: {msg}"),
            ServeError::Io(e) => write!(f, "service io failure: {e}"),
            ServeError::Corrupt(msg) => write!(f, "corrupt service log: {msg}"),
            ServeError::DigestMismatch { expected, found } => {
                write!(f, "WAL digest {found:#018x} does not match configured {expected:#018x}")
            }
            ServeError::Dead(msg) => write!(f, "service halted: {msg}"),
            ServeError::Draining => write!(f, "service is draining"),
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServeError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for ServeError {
    fn from(e: std::io::Error) -> Self {
        ServeError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_validates() {
        assert!(ServeConfig::new(7, 0).validate().is_ok());
    }

    #[test]
    fn zero_fields_are_rejected() {
        for (field, mutate) in [
            ("workers", Box::new(|c: &mut ServeConfig| c.workers = 0) as Box<dyn Fn(&mut _)>),
            ("queue_depth", Box::new(|c: &mut ServeConfig| c.queue_depth = 0)),
            ("retry_limit", Box::new(|c: &mut ServeConfig| c.retry_limit = 0)),
        ] {
            let mut cfg = ServeConfig::new(0, 0);
            mutate(&mut cfg);
            let err = cfg.validate().expect_err(field);
            assert!(matches!(err, ServeError::Config(ref m) if m.contains(field)), "{err}");
        }
    }

    #[test]
    fn inverted_ranges_are_rejected() {
        let mut cfg = ServeConfig::new(0, 0);
        cfg.backoff_cap_us = cfg.backoff_base_us - 1;
        assert!(matches!(cfg.validate(), Err(ServeError::Config(_))));

        let mut cfg = ServeConfig::new(0, 0);
        cfg.degraded_enter = cfg.degraded_exit;
        assert!(matches!(cfg.validate(), Err(ServeError::Config(_))));
    }

    #[test]
    fn errors_display_their_payload() {
        let e = ServeError::DigestMismatch { expected: 1, found: 2 };
        let text = e.to_string();
        assert!(text.contains("0x0000000000000002"), "{text}");
        assert!(ServeError::Draining.to_string().contains("draining"));
        assert!(ServeError::Dead("fsync failed".to_owned()).to_string().contains("fsync"));
    }
}
