//! Recovery: folding a scanned service WAL (plus an optional checkpoint
//! snapshot) back into the exact pre-crash [`NetworkState`].
//!
//! The service writes one [`JournalRecord`] per decision, after a single
//! `RunStart`, and fsyncs before acking — so the durable WAL prefix *is*
//! the decision history. Recovery is:
//!
//! 1. [`sb_sim::journal::scan`] the WAL — the scan stops at the first
//!    torn or corrupt frame, discarding any half-written tail (which by
//!    the WAL-before-ack rule was never acknowledged to a client);
//! 2. optionally load the newest [`sb_sim::checkpoint`] snapshot and
//!    [`decode_checkpoint_payload`] it into a base state covering its
//!    first `decided` decisions;
//! 3. [`replay`] the remaining decisions: admissions re-commit their
//!    recorded plans, rejections and sheds advance the stream position
//!    (sheds are load-dependent, so replay applies them verbatim instead
//!    of re-deriving them).
//!
//! The recovered state is bit-identical (as serialized by
//! [`NetworkState::encode_snapshot`]) to the state the service held when
//! the last durable decision was made.

use crate::ServeError;
use sb_cear::{NetworkState, ReservationPlan};
use sb_sim::journal::JournalRecord;
use sb_topology::TopologySeries;
use std::sync::Arc;

/// Serializes a checkpoint payload: the decision count followed by the
/// state snapshot. Written via [`sb_sim::checkpoint::write`] with the
/// decision count (truncated) as the slot field.
pub fn encode_checkpoint_payload(decided: u64, state: &NetworkState) -> Vec<u8> {
    let mut w = sb_wire::Writer::new();
    w.u64(decided);
    state.encode_snapshot(&mut w);
    w.into_bytes()
}

/// Restores a payload written by [`encode_checkpoint_payload`] on top of
/// a freshly rebuilt topology `series`.
///
/// # Errors
///
/// [`ServeError::Corrupt`] on truncation, trailing bytes, or any
/// dimension mismatch against `series`.
pub fn decode_checkpoint_payload(
    series: impl Into<Arc<TopologySeries>>,
    bytes: &[u8],
) -> Result<(u64, NetworkState), ServeError> {
    let corrupt = |e: sb_wire::WireError| ServeError::Corrupt(format!("checkpoint payload: {e}"));
    let mut r = sb_wire::Reader::new(bytes);
    let decided = r.u64().map_err(corrupt)?;
    let state = NetworkState::decode_snapshot(series, &mut r).map_err(corrupt)?;
    if !r.is_exhausted() {
        return Err(ServeError::Corrupt(format!(
            "checkpoint payload has {} trailing bytes",
            r.remaining()
        )));
    }
    Ok((decided, state))
}

/// The digest-canonical form of a service WAL record: `attempts_left` is
/// zeroed, because it counts quote bounces — a function of thread timing
/// under load, not of the decision itself — and must not perturb digest
/// comparisons between a killed-and-resumed run and an uninterrupted one.
/// Every other field (verdict, price, plan, shed reason, order) is part
/// of the decision and is kept.
pub fn canonical_record(record: &JournalRecord) -> JournalRecord {
    let mut r = record.clone();
    if let JournalRecord::Admission { attempts_left, .. }
    | JournalRecord::Rejection { attempts_left, .. } = &mut r
    {
        *attempts_left = 0;
    }
    r
}

/// The result of [`replay`]: the service's state and stream position as
/// of the last durable decision.
#[derive(Debug)]
pub struct Recovered {
    /// State with every durable admission applied.
    pub state: NetworkState,
    /// Total durable decisions (admissions + rejections + sheds) — the
    /// index of the next request to submit from the original stream.
    pub decided: u64,
    /// Every durable decision record, in commit order (including those
    /// already folded into the checkpoint `base`), for digesting or
    /// comparison against a reference run.
    pub decisions: Vec<JournalRecord>,
}

/// Folds scanned WAL `records` into `base`, skipping the first
/// `already_decided` decisions (the ones the checkpoint `base` already
/// contains).
///
/// # Errors
///
/// * [`ServeError::DigestMismatch`] — the `RunStart` digest differs from
///   `expected_digest`;
/// * [`ServeError::Corrupt`] — no `RunStart` first, a record type the
///   service never writes, an admission whose recorded plan no longer
///   commits, or a checkpoint claiming more decisions than the WAL
///   holds.
pub fn replay(
    mut base: NetworkState,
    already_decided: u64,
    records: &[JournalRecord],
    expected_digest: u64,
) -> Result<Recovered, ServeError> {
    let mut records = records.iter();
    match records.next() {
        None => {
            if already_decided > 0 {
                return Err(ServeError::Corrupt(format!(
                    "checkpoint covers {already_decided} decisions but the WAL is empty"
                )));
            }
            return Ok(Recovered { state: base, decided: 0, decisions: Vec::new() });
        }
        Some(JournalRecord::RunStart { config_digest, .. }) => {
            if *config_digest != expected_digest {
                return Err(ServeError::DigestMismatch {
                    expected: expected_digest,
                    found: *config_digest,
                });
            }
        }
        Some(other) => {
            return Err(ServeError::Corrupt(format!(
                "service WAL must begin with RunStart, found {other:?}"
            )));
        }
    }

    let mut decided: u64 = 0;
    let mut decisions = Vec::new();
    for record in records {
        match record {
            JournalRecord::Admission { request, price, slot_paths, .. } => {
                if decided >= already_decided {
                    let plan =
                        ReservationPlan { slot_paths: slot_paths.clone(), total_cost: *price };
                    base.try_commit_plan(request, &plan).map_err(|e| {
                        ServeError::Corrupt(format!(
                            "WAL admission #{decided} (request {}) no longer commits: {e:?}",
                            request.id.0
                        ))
                    })?;
                }
                decided += 1;
            }
            JournalRecord::Rejection { .. } | JournalRecord::Shed { .. } => decided += 1,
            other => {
                return Err(ServeError::Corrupt(format!(
                    "record not produced by the admission service: {other:?}"
                )));
            }
        }
        decisions.push(record.clone());
    }
    if decided < already_decided {
        return Err(ServeError::Corrupt(format!(
            "checkpoint covers {already_decided} decisions but the WAL holds only {decided}"
        )));
    }
    Ok(Recovered { state: base, decided, decisions })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{build_net, serial_decide, snapshot, stream};
    use sb_cear::Cear;
    use sb_sim::journal::ShedReason;
    use std::sync::Arc;

    const DIGEST: u64 = 0xABCD;

    fn run_start() -> JournalRecord {
        JournalRecord::RunStart {
            config_digest: DIGEST,
            algorithm: "sb-serve".to_owned(),
            seed: 0,
            horizon: 4,
        }
    }

    /// Drives the serial admission rule over a stream and returns the
    /// final state plus the records the service would have WAL'd.
    fn serial_wal(n: usize) -> (crate::testutil::TestNet, NetworkState, Vec<JournalRecord>) {
        let net = build_net(4);
        let cear = Cear::new(Default::default());
        let mut state = net.state.clone();
        let mut records = vec![run_start()];
        for req in stream(net.src, net.dst, 4, n, 5) {
            let start = req.start.0;
            records.push(match serial_decide(&cear, &mut state, &req) {
                crate::service::AckBody::Admitted { price, plan } => JournalRecord::Admission {
                    slot: start,
                    original_arrival: start,
                    attempts_left: 3,
                    request: req,
                    price,
                    slot_paths: plan.slot_paths,
                },
                crate::service::AckBody::Rejected { reason } => JournalRecord::Rejection {
                    slot: start,
                    original_arrival: start,
                    attempts_left: 3,
                    request_id: req.id.0,
                    reason,
                },
                crate::service::AckBody::Shed { .. } => unreachable!("serial rule never sheds"),
            });
        }
        (net, state, records)
    }

    #[test]
    fn checkpoint_payload_roundtrips_and_rejects_junk() {
        let (net, state, _) = serial_wal(6);
        let bytes = encode_checkpoint_payload(5, &state);
        let (decided, restored) =
            decode_checkpoint_payload(Arc::clone(&net.series), &bytes).unwrap();
        assert_eq!(decided, 5);
        assert_eq!(snapshot(&restored), snapshot(&state));
        for cut in [0, 4, bytes.len() - 1] {
            assert!(
                matches!(
                    decode_checkpoint_payload(Arc::clone(&net.series), &bytes[..cut]),
                    Err(ServeError::Corrupt(_))
                ),
                "cut at {cut}"
            );
        }
        let mut long = bytes;
        long.push(0);
        let err = decode_checkpoint_payload(Arc::clone(&net.series), &long).unwrap_err();
        assert!(matches!(err, ServeError::Corrupt(ref m) if m.contains("trailing")), "{err}");
    }

    #[test]
    fn replay_rebuilds_the_serial_state() {
        let (net, state, records) = serial_wal(10);
        let recovered = replay(net.state.clone(), 0, &records, DIGEST).unwrap();
        assert_eq!(recovered.decided, 10);
        assert_eq!(recovered.decisions.len(), 10);
        assert_eq!(snapshot(&recovered.state), snapshot(&state));
    }

    /// Starting from a mid-stream checkpoint must land on the same state
    /// as replaying the whole WAL from scratch.
    #[test]
    fn replay_skips_checkpointed_decisions_exactly() {
        let (net, state, records) = serial_wal(10);
        // Rebuild the state as of decision 6 by replaying a prefix...
        let prefix = replay(net.state.clone(), 0, &records[..7], DIGEST).unwrap();
        assert_eq!(prefix.decided, 6);
        // ...then hand it to a full replay as the checkpoint base.
        let resumed = replay(prefix.state, 6, &records, DIGEST).unwrap();
        assert_eq!(resumed.decided, 10);
        assert_eq!(snapshot(&resumed.state), snapshot(&state));
    }

    /// Two WALs for the same decisions digest equal however many bounces
    /// each decision survived — and no other field is touched.
    #[test]
    fn canonical_records_forget_only_attempt_counts() {
        let (_, _, records) = serial_wal(6);
        for record in &records {
            let mut bumped = record.clone();
            if let JournalRecord::Admission { attempts_left, .. }
            | JournalRecord::Rejection { attempts_left, .. } = &mut bumped
            {
                *attempts_left = 1;
                assert_ne!(&bumped, record);
            }
            assert_eq!(canonical_record(&bumped), canonical_record(record));
        }
        assert_eq!(canonical_record(&run_start()), run_start());
    }

    #[test]
    fn replay_guards_its_preconditions() {
        let net = build_net(4);
        let shed = JournalRecord::Shed { request_id: 0, reason: ShedReason::QueueFull };

        // Digest mismatch.
        let err = replay(net.state.clone(), 0, &[run_start()], DIGEST + 1).unwrap_err();
        assert!(
            matches!(err, ServeError::DigestMismatch { expected, found }
                if expected == DIGEST + 1 && found == DIGEST),
            "{err}"
        );
        // The WAL must begin with RunStart.
        let err = replay(net.state.clone(), 0, std::slice::from_ref(&shed), DIGEST).unwrap_err();
        assert!(matches!(err, ServeError::Corrupt(ref m) if m.contains("RunStart")), "{err}");
        // Record types the service never writes are refused.
        let foreign = JournalRecord::SlotStart { slot: 0 };
        let err = replay(net.state.clone(), 0, &[run_start(), foreign], DIGEST).unwrap_err();
        assert!(matches!(err, ServeError::Corrupt(_)), "{err}");
        // A checkpoint claiming more decisions than the WAL holds.
        let err = replay(net.state.clone(), 3, &[run_start(), shed], DIGEST).unwrap_err();
        assert!(matches!(err, ServeError::Corrupt(ref m) if m.contains("only 1")), "{err}");
        // A checkpoint over an empty WAL is impossible.
        let err = replay(net.state.clone(), 1, &[], DIGEST).unwrap_err();
        assert!(matches!(err, ServeError::Corrupt(ref m) if m.contains("empty")), "{err}");
        // An empty WAL on a fresh start is just a fresh start.
        let fresh = replay(net.state.clone(), 0, &[], DIGEST).unwrap();
        assert_eq!(fresh.decided, 0);
        assert_eq!(snapshot(&fresh.state), snapshot(&net.state));
    }
}
