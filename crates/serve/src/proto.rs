//! The service's framed wire protocol: one [`SubmitFrame`] per request
//! in, one [`AckFrame`] per decision out, both carried in
//! [`sb_wire::frame`] checksummed frames so a torn or corrupt stream is
//! detected instead of misparsed.
//!
//! The ack deliberately carries only the *decision* (price or reason),
//! not the reservation plan — the plan is operator-side state, durable in
//! the WAL; clients need the verdict and the bill.

use sb_cear::RejectReason;
use sb_demand::{Request, RequestId};
use sb_sim::journal::ShedReason;
use sb_wire::frame::{self, FrameStatus};
use sb_wire::{Reader, WireError, Writer};

/// Largest accepted frame payload (a request is well under this).
pub const MAX_PAYLOAD: u32 = 1 << 20;

/// One client request entering the service.
#[derive(Debug, Clone, PartialEq)]
pub struct SubmitFrame {
    /// Client-side sequence number, echoed in the matching ack.
    pub seq: u64,
    /// The booking request.
    pub request: Request,
}

/// The decision part of an [`AckFrame`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum AckVerdict {
    /// Admitted at this price.
    Admitted {
        /// The price charged.
        price: f64,
    },
    /// Rejected by the algorithm.
    Rejected {
        /// Why.
        reason: RejectReason,
    },
    /// Dropped by load shedding.
    Shed {
        /// Why.
        reason: ShedReason,
    },
}

/// One decision leaving the service.
#[derive(Debug, Clone, PartialEq)]
pub struct AckFrame {
    /// Echo of the submission's sequence number.
    pub seq: u64,
    /// The request decided.
    pub request_id: RequestId,
    /// The decision.
    pub verdict: AckVerdict,
}

fn reject_tag(reason: RejectReason) -> u8 {
    match reason {
        RejectReason::NoFeasiblePath => 0,
        RejectReason::PriceAboveValuation => 1,
        RejectReason::CommitFailed => 2,
    }
}

fn reject_from_tag(tag: u8) -> Result<RejectReason, WireError> {
    Ok(match tag {
        0 => RejectReason::NoFeasiblePath,
        1 => RejectReason::PriceAboveValuation,
        2 => RejectReason::CommitFailed,
        tag => return Err(WireError::BadTag { tag, context: "AckFrame RejectReason" }),
    })
}

fn shed_tag(reason: ShedReason) -> u8 {
    match reason {
        ShedReason::QueueFull => 0,
        ShedReason::DeadlineExceeded => 1,
        ShedReason::RetriesExhausted => 2,
    }
}

fn shed_from_tag(tag: u8) -> Result<ShedReason, WireError> {
    Ok(match tag {
        0 => ShedReason::QueueFull,
        1 => ShedReason::DeadlineExceeded,
        2 => ShedReason::RetriesExhausted,
        tag => return Err(WireError::BadTag { tag, context: "AckFrame ShedReason" }),
    })
}

impl SubmitFrame {
    /// Appends this submission as one checksummed frame.
    pub fn write(&self, out: &mut Vec<u8>) {
        let mut w = Writer::new();
        w.u64(self.seq);
        self.request.encode(&mut w);
        frame::write_frame(out, &w.into_bytes());
    }

    /// Decodes a frame payload produced by [`SubmitFrame::write`].
    ///
    /// # Errors
    ///
    /// [`WireError`] on truncation or trailing bytes.
    pub fn decode(payload: &[u8]) -> Result<Self, WireError> {
        let mut r = Reader::new(payload);
        let seq = r.u64()?;
        let request = Request::decode(&mut r)?;
        expect_exhausted(&r, "SubmitFrame")?;
        Ok(SubmitFrame { seq, request })
    }
}

impl AckFrame {
    /// Appends this ack as one checksummed frame.
    pub fn write(&self, out: &mut Vec<u8>) {
        let mut w = Writer::new();
        w.u64(self.seq);
        w.u32(self.request_id.0);
        match self.verdict {
            AckVerdict::Admitted { price } => {
                w.u8(0);
                w.f64(price);
            }
            AckVerdict::Rejected { reason } => {
                w.u8(1);
                w.u8(reject_tag(reason));
            }
            AckVerdict::Shed { reason } => {
                w.u8(2);
                w.u8(shed_tag(reason));
            }
        }
        frame::write_frame(out, &w.into_bytes());
    }

    /// Decodes a frame payload produced by [`AckFrame::write`].
    ///
    /// # Errors
    ///
    /// [`WireError`] on truncation, trailing bytes, or an unknown tag.
    pub fn decode(payload: &[u8]) -> Result<Self, WireError> {
        let mut r = Reader::new(payload);
        let seq = r.u64()?;
        let request_id = RequestId(r.u32()?);
        let verdict = match r.u8()? {
            0 => AckVerdict::Admitted { price: r.f64()? },
            1 => AckVerdict::Rejected { reason: reject_from_tag(r.u8()?)? },
            2 => AckVerdict::Shed { reason: shed_from_tag(r.u8()?)? },
            tag => return Err(WireError::BadTag { tag, context: "AckFrame verdict" }),
        };
        expect_exhausted(&r, "AckFrame")?;
        Ok(AckFrame { seq, request_id, verdict })
    }
}

fn expect_exhausted(r: &Reader<'_>, context: &'static str) -> Result<(), WireError> {
    if r.is_exhausted() {
        Ok(())
    } else {
        Err(WireError::Invalid { detail: format!("{context}: trailing bytes") })
    }
}

/// Splits a byte stream into decoded ack frames, stopping at the first
/// incomplete or corrupt frame (torn tail).
///
/// # Errors
///
/// [`WireError`] if a structurally complete frame fails to decode.
pub fn read_acks(mut buf: &[u8]) -> Result<Vec<AckFrame>, WireError> {
    let mut acks = Vec::new();
    while let FrameStatus::Complete { payload, consumed } = frame::read_frame(buf, MAX_PAYLOAD) {
        acks.push(AckFrame::decode(payload)?);
        buf = &buf[consumed..];
    }
    Ok(acks)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sb_demand::RateProfile;
    use sb_topology::{NodeId, SlotIndex};

    fn request() -> Request {
        Request {
            id: RequestId(7),
            source: NodeId(1),
            destination: NodeId(2),
            rate: RateProfile::Constant(500.0),
            start: SlotIndex(3),
            end: SlotIndex(5),
            valuation: 1.25e6,
        }
    }

    #[test]
    fn submit_frame_roundtrips() {
        let frame_in = SubmitFrame { seq: 42, request: request() };
        let mut bytes = Vec::new();
        frame_in.write(&mut bytes);
        let FrameStatus::Complete { payload, consumed } = frame::read_frame(&bytes, MAX_PAYLOAD)
        else {
            panic!("frame did not read back");
        };
        assert_eq!(consumed, bytes.len());
        assert_eq!(SubmitFrame::decode(payload).unwrap(), frame_in);
    }

    #[test]
    fn ack_frames_roundtrip_every_verdict() {
        let verdicts = [
            AckVerdict::Admitted { price: 12.5 },
            AckVerdict::Rejected { reason: RejectReason::NoFeasiblePath },
            AckVerdict::Rejected { reason: RejectReason::PriceAboveValuation },
            AckVerdict::Rejected { reason: RejectReason::CommitFailed },
            AckVerdict::Shed { reason: ShedReason::QueueFull },
            AckVerdict::Shed { reason: ShedReason::DeadlineExceeded },
            AckVerdict::Shed { reason: ShedReason::RetriesExhausted },
        ];
        let mut bytes = Vec::new();
        for (i, verdict) in verdicts.iter().enumerate() {
            AckFrame { seq: i as u64, request_id: RequestId(i as u32), verdict: *verdict }
                .write(&mut bytes);
        }
        let acks = read_acks(&bytes).unwrap();
        assert_eq!(acks.len(), verdicts.len());
        for (i, ack) in acks.iter().enumerate() {
            assert_eq!(ack.seq, i as u64);
            assert_eq!(ack.verdict, verdicts[i]);
        }
    }

    #[test]
    fn torn_tail_stops_cleanly() {
        let mut bytes = Vec::new();
        AckFrame { seq: 0, request_id: RequestId(0), verdict: AckVerdict::Admitted { price: 1.0 } }
            .write(&mut bytes);
        let whole = bytes.len();
        AckFrame { seq: 1, request_id: RequestId(1), verdict: AckVerdict::Admitted { price: 2.0 } }
            .write(&mut bytes);
        for cut in whole..bytes.len() {
            let acks = read_acks(&bytes[..cut]).unwrap();
            assert_eq!(acks.len(), 1, "cut at {cut}");
            assert_eq!(acks[0].seq, 0);
        }
    }

    #[test]
    fn truncated_payloads_error() {
        let frame_in = SubmitFrame { seq: 9, request: request() };
        let mut bytes = Vec::new();
        frame_in.write(&mut bytes);
        let FrameStatus::Complete { payload, .. } = frame::read_frame(&bytes, MAX_PAYLOAD) else {
            panic!("frame did not read back");
        };
        for cut in 0..payload.len() {
            assert!(SubmitFrame::decode(&payload[..cut]).is_err(), "cut at {cut}");
        }
        // Trailing garbage is rejected too.
        let mut long = payload.to_vec();
        long.push(0);
        assert!(SubmitFrame::decode(&long).is_err());
    }
}
