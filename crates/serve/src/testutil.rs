//! Shared test fixtures: a small real constellation, request streams,
//! and the serial admission rule the service must reproduce.

use crate::service::AckBody;
use sb_cear::{Cear, NetworkState, RejectReason};
use sb_demand::{RateProfile, Request, RequestId};
use sb_energy::EnergyParams;
use sb_geo::coords::Geodetic;
use sb_orbit::walker::WalkerConstellation;
use sb_topology::{NetworkNodes, NodeId, SlotIndex, TopologyConfig, TopologySeries};
use std::sync::Arc;

/// A 12×12 LEO shell with two ground sites, ready to serve.
pub(crate) struct TestNet {
    pub series: Arc<TopologySeries>,
    pub state: NetworkState,
    pub src: NodeId,
    pub dst: NodeId,
}

/// Builds the test constellation with `slots` topology slots.
pub(crate) fn build_net(slots: usize) -> TestNet {
    let shell = WalkerConstellation::delta(12, 12, 1, 550e3, 53f64.to_radians());
    let mut nodes = NetworkNodes::from_walker(&shell);
    let src = nodes.add_ground_site(Geodetic::from_degrees(35.8, -78.6, 0.0));
    let dst = nodes.add_ground_site(Geodetic::from_degrees(48.9, 2.3, 0.0));
    let cfg = TopologyConfig { min_elevation_rad: 10f64.to_radians(), ..TopologyConfig::default() };
    let series = Arc::new(TopologySeries::build(&nodes, &cfg, slots, 60.0));
    let state = NetworkState::new(Arc::clone(&series), &EnergyParams::default());
    TestNet { series, state, src, dst }
}

/// A constant-rate request between the test sites.
pub(crate) fn request(
    id: u32,
    src: NodeId,
    dst: NodeId,
    rate: f64,
    start: u32,
    end: u32,
    valuation: f64,
) -> Request {
    Request {
        id: RequestId(id),
        source: src,
        destination: dst,
        rate: RateProfile::Constant(rate),
        start: SlotIndex(start),
        end: SlotIndex(end),
        valuation,
    }
}

/// A mixed request stream: varying rates and windows, with every fourth
/// valuation low enough to draw price rejections.
pub(crate) fn stream(src: NodeId, dst: NodeId, horizon: u32, n: usize, seed: u64) -> Vec<Request> {
    let mut x = seed;
    let mut split = move || {
        x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = x;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    };
    (0..n)
        .map(|i| {
            let rate = 100.0 + (split() % 800) as f64;
            let start = (split() % u64::from(horizon - 1)) as u32;
            let end = start + (split() % u64::from(horizon - start)) as u32;
            let valuation = if split() % 4 == 0 { 1.0 } else { 1e7 };
            request(i as u32, src, dst, rate, start, end, valuation)
        })
        .collect()
}

/// The service's admission rule applied serially — quote, price check,
/// atomic commit — exactly what the committer does at each job's turn.
pub(crate) fn serial_decide(cear: &Cear, state: &mut NetworkState, req: &Request) -> AckBody {
    match cear.quote(req, state) {
        Err(reason) => AckBody::Rejected { reason },
        Ok((plan, price)) => {
            if price > req.valuation {
                return AckBody::Rejected { reason: RejectReason::PriceAboveValuation };
            }
            match state.try_commit_plan(req, &plan) {
                Ok(()) => AckBody::Admitted { price, plan },
                Err(_) => AckBody::Rejected { reason: RejectReason::CommitFailed },
            }
        }
    }
}

/// The state's canonical serialized form (epochs excluded), for
/// bit-identity assertions.
pub(crate) fn snapshot(state: &NetworkState) -> Vec<u8> {
    let mut w = sb_wire::Writer::new();
    state.encode_snapshot(&mut w);
    w.into_bytes()
}
