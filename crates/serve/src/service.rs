//! The admission service: parallel optimistic quoting, a single ordering
//! committer with epoch revalidation, WAL-before-ack durability, and
//! overload shedding.
//!
//! # Threading model
//!
//! * `workers` quote threads pop submitted requests, price them with a
//!   cached [`Cear`] under a **read** lock on the shared
//!   [`NetworkState`], and stage the result together with the
//!   [`EpochReadSet`] the search touched.
//! * One committer thread consumes staged results **strictly in
//!   submission order**. It revalidates each read set under the **write**
//!   lock (the committer is the only state mutator, so a quote validated
//!   current commits atomically), appends the decision to the WAL,
//!   fsyncs, and only then resolves the client's ticket.
//! * A quote invalidated by an earlier commit is bounced back to the
//!   workers with decorrelated-jitter backoff; because the committer
//!   freezes the state while it waits for the requote, a bounced request
//!   can conflict at most once — exhaustion
//!   ([`ShedReason::RetriesExhausted`]) is reachable only at
//!   `retry_limit == 1`.
//!
//! The committed decision stream is therefore exactly what a serial CEAR
//! loop would produce over the same requests in submission order; only
//! *sheds* (queue overflow, lapsed deadlines, retry exhaustion) are
//! load-dependent, and each one is WAL-logged so recovery replays rather
//! than re-derives it.

use crate::{ServeConfig, ServeError};
use sb_cear::{Cear, EpochReadSet, NetworkState, RejectReason, ReservationPlan};
use sb_demand::{Request, RequestId};
use sb_sim::checkpoint;
use sb_sim::journal::{Journal, JournalRecord, ShedReason};
use std::collections::{BTreeMap, VecDeque};
use std::path::PathBuf;
use std::sync::{Arc, Condvar, Mutex, RwLock};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

type QuoteResult = Result<(ReservationPlan, f64), RejectReason>;

/// How the service answered one request.
#[derive(Debug, Clone, PartialEq)]
pub enum AckBody {
    /// Admitted: resources are reserved and the decision is durable.
    Admitted {
        /// The price charged.
        price: f64,
        /// The committed plan (mirrors what the WAL records).
        plan: ReservationPlan,
    },
    /// Rejected by the algorithm (no path, price above valuation, or
    /// failed atomic commit validation).
    Rejected {
        /// Why.
        reason: RejectReason,
    },
    /// Dropped by load shedding without a quote-based decision.
    Shed {
        /// Why.
        reason: ShedReason,
    },
}

/// A durable answer to one submission: by the time an `Ack` is observable
/// the matching WAL record has been written and fsynced.
#[derive(Debug, Clone, PartialEq)]
pub struct Ack {
    /// Submission sequence number (commit order).
    pub seq: u64,
    /// The request this answers.
    pub request_id: RequestId,
    /// The decision.
    pub body: AckBody,
}

/// One-shot mailbox a submission's answer arrives in.
#[derive(Debug, Default)]
struct AckSlot {
    value: Mutex<Option<Result<Ack, String>>>,
    cv: Condvar,
}

impl AckSlot {
    /// First resolution wins; later calls are ignored (idempotent).
    fn resolve(&self, res: Result<Ack, String>) {
        let mut v = self.value.lock().unwrap();
        if v.is_none() {
            *v = Some(res);
            self.cv.notify_all();
        }
    }
}

/// Handle to one in-flight submission; redeem with [`Ticket::wait`].
#[derive(Debug)]
pub struct Ticket {
    /// The submission's sequence number.
    pub seq: u64,
    slot: Arc<AckSlot>,
}

impl Ticket {
    /// Blocks until the service decides (or dies).
    ///
    /// # Errors
    ///
    /// [`ServeError::Dead`] if the service halted on a WAL/checkpoint
    /// failure before deciding this request.
    pub fn wait(self) -> Result<Ack, ServeError> {
        let mut v = self.slot.value.lock().unwrap();
        loop {
            if let Some(res) = v.take() {
                return res.map_err(ServeError::Dead);
            }
            v = self.slot.cv.wait(v).unwrap();
        }
    }
}

/// Service counters, all monotone over the service's lifetime.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ServeStats {
    /// Requests accepted into the queue (sheds included).
    pub submitted: u64,
    /// Admissions committed and WAL'd.
    pub admitted: u64,
    /// Rejections: no feasible path.
    pub rejected_no_path: u64,
    /// Rejections: price above valuation.
    pub rejected_price: u64,
    /// Rejections: failed atomic commit validation.
    pub rejected_commit: u64,
    /// Sheds: bounded queue overflowed.
    pub shed_queue_full: u64,
    /// Sheds: service deadline lapsed before the commit turn.
    pub shed_deadline: u64,
    /// Sheds: quote invalidated more times than the retry limit.
    pub shed_retries: u64,
    /// Quotes found stale at commit time.
    pub conflicts: u64,
    /// Bounced requests sent back for a fresh quote.
    pub requotes: u64,
    /// Transitions into degraded (committer-serial) mode.
    pub degraded_entries: u64,
    /// Quotes computed by the committer itself (degraded mode or drain
    /// tail after the workers exited).
    pub degraded_quotes: u64,
    /// Checkpoints written.
    pub checkpoints: u64,
    /// Highest undecided-request count observed at submission.
    pub max_occupancy: u64,
}

impl ServeStats {
    /// Total decisions written to the WAL.
    pub fn decisions(&self) -> u64 {
        self.admitted
            + self.rejected_no_path
            + self.rejected_price
            + self.rejected_commit
            + self.shed_queue_full
            + self.shed_deadline
            + self.shed_retries
    }
}

/// What [`AdmissionService::drain`] hands back once every thread has
/// exited.
#[derive(Debug)]
pub struct DrainReport {
    /// Final counters.
    pub stats: ServeStats,
    /// The final network state (every WAL'd admission applied).
    pub state: NetworkState,
    /// `Some(message)` if the service died on a WAL/checkpoint failure
    /// instead of draining cleanly.
    pub failure: Option<String>,
}

/// One undecided request travelling through the service.
struct Job {
    seq: u64,
    request: Request,
    /// Quote attempts remaining (starts at `retry_limit`).
    attempts_left: u32,
    deadline: Option<Instant>,
    /// Earliest time a worker may requote this job (backoff).
    ready_at: Option<Instant>,
    /// Previous backoff span, µs (decorrelated jitter state).
    backoff_us: u64,
    ack: Arc<AckSlot>,
}

/// A job the workers have finished with, waiting for its commit turn.
enum Staged {
    /// Quoted optimistically; `reads` must still be current at commit.
    Quoted { job: Job, result: QuoteResult, reads: EpochReadSet },
    /// Already shed (queue overflow or lapsed deadline); the committer
    /// WALs and acks it when its turn comes, preserving order.
    Shed { job: Job, reason: ShedReason },
}

impl Staged {
    fn into_job(self) -> Job {
        match self {
            Staged::Quoted { job, .. } | Staged::Shed { job, .. } => job,
        }
    }
}

/// Queue state behind the mutex.
struct Q {
    pending: VecDeque<Job>,
    staged: BTreeMap<u64, Staged>,
    /// Next sequence number to hand out.
    next_seq: u64,
    /// Sequence number the committer is waiting to decide.
    next_commit: u64,
    draining: bool,
    /// `Some(message)` once the service has died.
    dead: Option<String>,
    degraded: bool,
    live_workers: usize,
    stats: ServeStats,
}

impl Q {
    /// Requests submitted but not yet decided (in flight anywhere).
    fn occupancy(&self) -> usize {
        (self.next_seq - self.next_commit) as usize
    }
}

struct Shared {
    state: RwLock<NetworkState>,
    q: Mutex<Q>,
    /// Wakes quote workers (new pending work, mode change, drain).
    work_cv: Condvar,
    /// Wakes the committer (staged result, new submission, drain).
    commit_cv: Condvar,
    cfg: ServeConfig,
}

/// Value density used to pick queue-overflow victims: valuation per
/// unit of (peak rate × duration). Requests that ask for nothing are
/// never shed first.
fn value_density(request: &Request) -> f64 {
    let demand = request.rate.peak_rate() * request.duration_slots() as f64;
    if demand > 0.0 {
        request.valuation / demand
    } else {
        f64::INFINITY
    }
}

/// SplitMix64 step — the backoff jitter stream.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A fault-tolerant online admission service over one [`NetworkState`].
///
/// Start with [`AdmissionService::start`], feed it with
/// [`AdmissionService::submit`] / [`AdmissionService::submit_blocking`],
/// stop with [`AdmissionService::drain`]. See the module docs for the
/// threading model and durability contract.
pub struct AdmissionService {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
    committer: Option<JoinHandle<()>>,
}

impl AdmissionService {
    /// Starts the service over `state`, journaling every decision to
    /// `journal` (a `RunStart` is written first when the journal is
    /// empty). `already_decided` is the number of decisions the caller
    /// replayed into `state` before handing it over (0 for a fresh run);
    /// it seeds the checkpoint cadence and numbering. When
    /// `checkpoint_dir` is `Some` and `cfg.checkpoint_every > 0`, a
    /// [`sb_sim::checkpoint`] snapshot is written every that many
    /// decisions.
    ///
    /// # Errors
    ///
    /// [`ServeError::Config`] on an invalid `cfg`, [`ServeError::Io`] if
    /// the initial `RunStart` cannot be written.
    pub fn start(
        state: NetworkState,
        mut journal: Journal,
        cfg: ServeConfig,
        checkpoint_dir: Option<PathBuf>,
        already_decided: u64,
    ) -> Result<AdmissionService, ServeError> {
        cfg.validate()?;
        if journal.is_empty() {
            journal.append(&JournalRecord::RunStart {
                config_digest: cfg.digest,
                algorithm: "sb-serve".to_owned(),
                seed: cfg.seed,
                horizon: state.horizon() as u32,
            })?;
        }
        let shared = Arc::new(Shared {
            state: RwLock::new(state),
            q: Mutex::new(Q {
                pending: VecDeque::new(),
                staged: BTreeMap::new(),
                next_seq: already_decided,
                next_commit: already_decided,
                draining: false,
                dead: None,
                degraded: false,
                live_workers: cfg.workers,
                stats: ServeStats::default(),
            }),
            work_cv: Condvar::new(),
            commit_cv: Condvar::new(),
            cfg: cfg.clone(),
        });
        let workers = (0..cfg.workers)
            .map(|_| {
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || {
                    worker_loop(&shared);
                    let mut q = shared.q.lock().unwrap();
                    q.live_workers -= 1;
                    shared.commit_cv.notify_all();
                })
            })
            .collect();
        let committer = {
            let shared = Arc::clone(&shared);
            let mut jitter = cfg.seed ^ 0x5365_7276_654A_6974; // "ServeJit"
            let _ = splitmix64(&mut jitter);
            let core = Committer {
                shared,
                journal,
                checkpoint_dir,
                reference: Cear::reference(cfg.params),
                jitter,
                decided: already_decided,
                since_checkpoint: 0,
            };
            Some(std::thread::spawn(move || core.run()))
        };
        Ok(AdmissionService { shared, workers, committer })
    }

    /// Submits one request, returning a [`Ticket`] immediately. When the
    /// queue is at capacity the lowest value-density candidate (this
    /// request or a pending one) is shed with [`ShedReason::QueueFull`].
    ///
    /// # Errors
    ///
    /// [`ServeError::Dead`] after the service has halted,
    /// [`ServeError::Draining`] after [`AdmissionService::drain`] began.
    pub fn submit(&self, request: Request) -> Result<Ticket, ServeError> {
        let now = Instant::now();
        let cfg = &self.shared.cfg;
        let mut q = self.shared.q.lock().unwrap();
        if let Some(msg) = &q.dead {
            return Err(ServeError::Dead(msg.clone()));
        }
        if q.draining {
            return Err(ServeError::Draining);
        }
        let seq = q.next_seq;
        q.next_seq += 1;
        q.stats.submitted += 1;
        let occupancy = q.occupancy();
        q.stats.max_occupancy = q.stats.max_occupancy.max(occupancy as u64);
        let slot = Arc::new(AckSlot::default());
        let job = Job {
            seq,
            request,
            attempts_left: cfg.retry_limit,
            deadline: cfg.deadline.map(|d| now + d),
            ready_at: None,
            backoff_us: 0,
            ack: Arc::clone(&slot),
        };
        if occupancy > cfg.queue_depth {
            // Overflow: shed the lowest value-density candidate. Only
            // still-pending jobs compete with the incoming one — staged
            // and in-flight jobs are already being worked on. Ties keep
            // the established job (its quote work is sunk cost).
            let incoming = value_density(&job.request);
            let victim = q
                .pending
                .iter()
                .enumerate()
                .min_by(|(_, a), (_, b)| {
                    value_density(&a.request).total_cmp(&value_density(&b.request))
                })
                .map(|(i, j)| (i, value_density(&j.request)));
            match victim {
                Some((i, density)) if density < incoming => {
                    let shed = q.pending.remove(i).expect("victim index in range");
                    q.staged.insert(
                        shed.seq,
                        Staged::Shed { job: shed, reason: ShedReason::QueueFull },
                    );
                    q.pending.push_back(job);
                }
                _ => {
                    q.staged.insert(seq, Staged::Shed { job, reason: ShedReason::QueueFull });
                }
            }
        } else {
            q.pending.push_back(job);
        }
        drop(q);
        self.shared.work_cv.notify_all();
        self.shared.commit_cv.notify_all();
        Ok(Ticket { seq, slot })
    }

    /// [`AdmissionService::submit`] followed by [`Ticket::wait`].
    ///
    /// # Errors
    ///
    /// As for [`AdmissionService::submit`] and [`Ticket::wait`].
    pub fn submit_blocking(&self, request: Request) -> Result<Ack, ServeError> {
        self.submit(request)?.wait()
    }

    /// Snapshot of the live counters.
    pub fn stats(&self) -> ServeStats {
        self.shared.q.lock().unwrap().stats.clone()
    }

    /// `true` once the service has halted on a WAL/checkpoint failure.
    pub fn is_dead(&self) -> bool {
        self.shared.q.lock().unwrap().dead.is_some()
    }

    /// Graceful shutdown: stops accepting submissions, decides everything
    /// already queued, joins all threads, and returns the final state.
    pub fn drain(mut self) -> DrainReport {
        {
            let mut q = self.shared.q.lock().unwrap();
            q.draining = true;
        }
        self.shared.work_cv.notify_all();
        self.shared.commit_cv.notify_all();
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
        if let Some(h) = self.committer.take() {
            let _ = h.join();
        }
        let (stats, failure) = {
            let q = self.shared.q.lock().unwrap();
            (q.stats.clone(), q.dead.clone())
        };
        let state = match Arc::try_unwrap(self.shared) {
            Ok(shared) => shared.state.into_inner().unwrap(),
            // A leaked clone of the shared handle (impossible today, but
            // cheap to tolerate): fall back to copying the state out.
            Err(shared) => shared.state.read().unwrap().clone(),
        };
        DrainReport { stats, state, failure }
    }

    /// Test hook: hold the state write lock to freeze both quoting and
    /// committing, making overload deterministic.
    #[cfg(test)]
    pub(crate) fn freeze_state(&self) -> std::sync::RwLockWriteGuard<'_, NetworkState> {
        self.shared.state.write().unwrap()
    }
}

/// One quote worker: pop → price under the read lock → stage.
fn worker_loop(shared: &Arc<Shared>) {
    let cear = Cear::new(shared.cfg.params);
    loop {
        let job = {
            let mut q = shared.q.lock().unwrap();
            loop {
                if q.dead.is_some() {
                    return;
                }
                if !q.degraded {
                    let now = Instant::now();
                    if let Some(pos) =
                        q.pending.iter().position(|j| j.ready_at.is_none_or(|t| t <= now))
                    {
                        break q.pending.remove(pos).expect("position in range");
                    }
                }
                if q.draining && q.pending.is_empty() {
                    return;
                }
                let (qq, _) = shared.work_cv.wait_timeout(q, Duration::from_micros(200)).unwrap();
                q = qq;
            }
        };
        let (result, reads) = {
            let state = shared.state.read().unwrap();
            cear.quote_recording(&job.request, &state)
        };
        let mut q = shared.q.lock().unwrap();
        if let Some(msg) = q.dead.clone() {
            drop(q);
            job.ack.resolve(Err(msg));
            return;
        }
        q.staged.insert(job.seq, Staged::Quoted { job, result, reads });
        drop(q);
        shared.commit_cv.notify_all();
    }
}

/// What the committer decided for one job (bounced requotes produce no
/// decision).
enum Verdict {
    Admitted { plan: ReservationPlan, price: f64 },
    Rejected { reason: RejectReason },
    Shed { reason: ShedReason },
}

enum Work {
    Staged(Staged),
    /// Committer-serial job (degraded mode, or the workers already
    /// exited during drain).
    SelfServe(Job),
    Exit,
}

struct Committer {
    shared: Arc<Shared>,
    journal: Journal,
    checkpoint_dir: Option<PathBuf>,
    /// Uncached CEAR for committer-serial quotes — bit-identical to the
    /// workers' cached quotes (see `sb_cear::parquote` equivalence
    /// tests), so mode transitions never change a decision.
    reference: Cear,
    jitter: u64,
    decided: u64,
    since_checkpoint: u64,
}

impl Committer {
    fn run(mut self) {
        loop {
            match self.next_work() {
                Work::Exit => return,
                Work::Staged(staged) => {
                    if !self.handle(staged) {
                        return;
                    }
                }
                Work::SelfServe(job) => {
                    let verdict = self.decide_serial(&job);
                    if !self.finalize(job, verdict) {
                        return;
                    }
                }
            }
        }
    }

    /// Blocks until the next-in-order job is actionable.
    fn next_work(&mut self) -> Work {
        let cfg = &self.shared.cfg;
        let mut q = self.shared.q.lock().unwrap();
        loop {
            if q.dead.is_some() {
                return Work::Exit;
            }
            let now = Instant::now();
            if cfg.deadline.is_some() {
                mark_expired(&mut q, now);
            }
            update_degraded(cfg, &mut q, &self.shared.work_cv);
            let turn = q.next_commit;
            if let Some(staged) = q.staged.remove(&turn) {
                return Work::Staged(staged);
            }
            if q.draining && q.next_commit == q.next_seq {
                return Work::Exit;
            }
            if q.degraded || q.live_workers == 0 {
                if let Some(pos) = q.pending.iter().position(|j| j.seq == q.next_commit) {
                    if q.pending[pos].ready_at.is_none_or(|t| t <= now) {
                        let job = q.pending.remove(pos).expect("position in range");
                        q.stats.degraded_quotes += 1;
                        return Work::SelfServe(job);
                    }
                }
            }
            let (qq, _) =
                self.shared.commit_cv.wait_timeout(q, Duration::from_micros(200)).unwrap();
            q = qq;
        }
    }

    /// Processes one staged entry. Returns `false` once the service has
    /// died.
    fn handle(&mut self, staged: Staged) -> bool {
        let (job, verdict) = match staged {
            Staged::Shed { job, reason } => (job, Verdict::Shed { reason }),
            Staged::Quoted { job, result, reads } => {
                if job.deadline.is_some_and(|d| Instant::now() >= d) {
                    (job, Verdict::Shed { reason: ShedReason::DeadlineExceeded })
                } else {
                    let stale = {
                        let state = self.shared.state.read().unwrap();
                        !reads.is_current(&state)
                    };
                    if stale {
                        return self.bounce(job);
                    }
                    let verdict = self.commit_current(&job, result);
                    (job, verdict)
                }
            }
        };
        self.finalize(job, verdict)
    }

    /// Applies a still-current quote: admission control, then the atomic
    /// commit. Runs under the write lock; the read-set check already
    /// passed and the committer is the sole mutator, so the quote cannot
    /// go stale between check and commit.
    fn commit_current(&mut self, job: &Job, result: QuoteResult) -> Verdict {
        match result {
            Err(reason) => Verdict::Rejected { reason },
            Ok((plan, price)) => {
                if price > job.request.valuation {
                    return Verdict::Rejected { reason: RejectReason::PriceAboveValuation };
                }
                let mut state = self.shared.state.write().unwrap();
                match state.try_commit_plan(&job.request, &plan) {
                    Ok(()) => Verdict::Admitted { plan, price },
                    Err(_) => Verdict::Rejected { reason: RejectReason::CommitFailed },
                }
            }
        }
    }

    /// Committer-serial path: quote and commit atomically under the
    /// write lock (no conflict window at all).
    fn decide_serial(&mut self, job: &Job) -> Verdict {
        if job.deadline.is_some_and(|d| Instant::now() >= d) {
            return Verdict::Shed { reason: ShedReason::DeadlineExceeded };
        }
        let mut state = self.shared.state.write().unwrap();
        match self.reference.quote(&job.request, &state) {
            Err(reason) => Verdict::Rejected { reason },
            Ok((plan, price)) => {
                if price > job.request.valuation {
                    return Verdict::Rejected { reason: RejectReason::PriceAboveValuation };
                }
                match state.try_commit_plan(&job.request, &plan) {
                    Ok(()) => Verdict::Admitted { plan, price },
                    Err(_) => Verdict::Rejected { reason: RejectReason::CommitFailed },
                }
            }
        }
    }

    /// A quote went stale: requeue with backoff, or shed once the
    /// attempts are gone. Returns `false` once the service has died
    /// (only via the exhaustion → WAL path).
    fn bounce(&mut self, mut job: Job) -> bool {
        let cfg = self.shared.cfg.clone();
        {
            let mut q = self.shared.q.lock().unwrap();
            q.stats.conflicts += 1;
            if job.attempts_left > 1 {
                job.attempts_left -= 1;
                q.stats.requotes += 1;
                // Decorrelated jitter: next ∈ [base, 3 × previous),
                // clamped to the cap.
                let prev = job.backoff_us.max(cfg.backoff_base_us);
                let span = (prev * 3).saturating_sub(cfg.backoff_base_us).max(1);
                let next = (cfg.backoff_base_us + splitmix64(&mut self.jitter) % span)
                    .min(cfg.backoff_cap_us);
                job.backoff_us = next;
                job.ready_at = Some(Instant::now() + Duration::from_micros(next));
                q.pending.push_front(job);
                drop(q);
                self.shared.work_cv.notify_all();
                return true;
            }
        }
        self.finalize(job, Verdict::Shed { reason: ShedReason::RetriesExhausted })
    }

    /// WAL → advance → ack → checkpoint, in that order. Returns `false`
    /// once the service has died.
    fn finalize(&mut self, job: Job, verdict: Verdict) -> bool {
        let start = job.request.start.0;
        let (record, body) = match verdict {
            Verdict::Admitted { plan, price } => (
                JournalRecord::Admission {
                    slot: start,
                    original_arrival: start,
                    attempts_left: job.attempts_left,
                    request: job.request.clone(),
                    price,
                    slot_paths: plan.slot_paths.clone(),
                },
                AckBody::Admitted { price, plan },
            ),
            Verdict::Rejected { reason } => (
                JournalRecord::Rejection {
                    slot: start,
                    original_arrival: start,
                    attempts_left: job.attempts_left,
                    request_id: job.request.id.0,
                    reason,
                },
                AckBody::Rejected { reason },
            ),
            Verdict::Shed { reason } => (
                JournalRecord::Shed { request_id: job.request.id.0, reason },
                AckBody::Shed { reason },
            ),
        };
        if let Err(e) = self.journal.append(&record) {
            self.die(format!("WAL append failed: {e}"), job);
            return false;
        }
        self.decided += 1;
        self.since_checkpoint += 1;
        {
            let mut q = self.shared.q.lock().unwrap();
            q.next_commit += 1;
            match &record {
                JournalRecord::Admission { .. } => q.stats.admitted += 1,
                JournalRecord::Rejection { reason, .. } => match reason {
                    RejectReason::NoFeasiblePath => q.stats.rejected_no_path += 1,
                    RejectReason::PriceAboveValuation => q.stats.rejected_price += 1,
                    RejectReason::CommitFailed => q.stats.rejected_commit += 1,
                },
                JournalRecord::Shed { reason, .. } => match reason {
                    ShedReason::QueueFull => q.stats.shed_queue_full += 1,
                    ShedReason::DeadlineExceeded => q.stats.shed_deadline += 1,
                    ShedReason::RetriesExhausted => q.stats.shed_retries += 1,
                },
                _ => {}
            }
            update_degraded(&self.shared.cfg, &mut q, &self.shared.work_cv);
        }
        self.shared.work_cv.notify_all();
        self.shared.commit_cv.notify_all();
        job.ack.resolve(Ok(Ack { seq: job.seq, request_id: job.request.id, body }));
        self.maybe_checkpoint()
    }

    /// Writes a checkpoint when one is due. The decision that triggered
    /// it is already durable and acked, so a checkpoint failure only
    /// kills the service for *future* requests.
    fn maybe_checkpoint(&mut self) -> bool {
        let every = self.shared.cfg.checkpoint_every;
        let Some(dir) = self.checkpoint_dir.clone() else { return true };
        if every == 0 || self.since_checkpoint < every {
            return true;
        }
        self.since_checkpoint = 0;
        let payload = {
            let state = self.shared.state.read().unwrap();
            crate::wal::encode_checkpoint_payload(self.decided, &state)
        };
        let written = checkpoint::write(
            &dir,
            self.decided as u32,
            self.shared.cfg.digest,
            self.journal.len(),
            &payload,
        );
        match written {
            Ok(_) => {
                self.shared.q.lock().unwrap().stats.checkpoints += 1;
                true
            }
            Err(e) => {
                self.die_no_job(format!("checkpoint write failed: {e}"));
                false
            }
        }
    }

    fn die(&mut self, msg: String, job: Job) {
        job.ack.resolve(Err(msg.clone()));
        self.die_no_job(msg);
    }

    /// Marks the service dead and resolves every outstanding ticket with
    /// the failure, so no client blocks forever.
    fn die_no_job(&mut self, msg: String) {
        let mut q = self.shared.q.lock().unwrap();
        q.dead = Some(msg.clone());
        for job in q.pending.drain(..) {
            job.ack.resolve(Err(msg.clone()));
        }
        for (_, staged) in std::mem::take(&mut q.staged) {
            staged.into_job().ack.resolve(Err(msg.clone()));
        }
        drop(q);
        self.shared.work_cv.notify_all();
        self.shared.commit_cv.notify_all();
    }
}

/// Moves every deadline-lapsed pending job into the staged map as a
/// [`ShedReason::DeadlineExceeded`] shed (WAL'd in order like any other
/// decision).
fn mark_expired(q: &mut Q, now: Instant) {
    let mut i = 0;
    while i < q.pending.len() {
        if q.pending[i].deadline.is_some_and(|d| now >= d) {
            let job = q.pending.remove(i).expect("index in range");
            q.staged.insert(job.seq, Staged::Shed { job, reason: ShedReason::DeadlineExceeded });
        } else {
            i += 1;
        }
    }
    // Quoted-but-expired *staged* entries are shed when their commit
    // turn comes (see `Committer::handle`); sheds staged here stay sheds.
}

/// Degraded-mode hysteresis: enter at `degraded_enter` undecided
/// requests, leave at `degraded_exit`.
fn update_degraded(cfg: &ServeConfig, q: &mut Q, work_cv: &Condvar) {
    let occupancy = q.occupancy();
    if !q.degraded && occupancy >= cfg.degraded_enter {
        q.degraded = true;
        q.stats.degraded_entries += 1;
    } else if q.degraded && occupancy <= cfg.degraded_exit {
        q.degraded = false;
        work_cv.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{build_net, request, serial_decide, snapshot, stream};
    use sb_cear::CearParams;
    use sb_sim::faultio::{FaultIo, FaultPlan};
    use sb_sim::journal;

    const DIGEST: u64 = 0x00D1_6E57;

    fn mem_journal(plan: FaultPlan) -> (Journal, FaultIo) {
        let io = FaultIo::new(plan);
        let handle = io.clone();
        (Journal::from_io(Box::new(io)), handle)
    }

    fn cfg(workers: usize) -> ServeConfig {
        let mut cfg = ServeConfig::new(DIGEST, 0);
        cfg.workers = workers;
        cfg
    }

    /// Open-loop at 4 workers: every ack — and the final state — must
    /// equal a serial CEAR pass over the same requests in submission
    /// order, and replaying the durable WAL must rebuild that state
    /// bit-identically.
    #[test]
    fn open_loop_acks_match_serial_cear() {
        let net = build_net(8);
        let requests = stream(net.src, net.dst, 8, 24, 7);
        let (journal, io) = mem_journal(FaultPlan::none());
        let service = AdmissionService::start(net.state.clone(), journal, cfg(4), None, 0).unwrap();
        let tickets: Vec<_> = requests.iter().map(|r| service.submit(r.clone()).unwrap()).collect();
        let acks: Vec<Ack> = tickets.into_iter().map(|t| t.wait().unwrap()).collect();
        let report = service.drain();
        assert_eq!(report.failure, None);

        let serial = Cear::new(CearParams::default());
        let mut serial_state = net.state.clone();
        for (i, (req, ack)) in requests.iter().zip(&acks).enumerate() {
            assert_eq!(ack.seq, i as u64);
            assert_eq!(ack.request_id, req.id);
            let expect = serial_decide(&serial, &mut serial_state, req);
            assert_eq!(ack.body, expect, "request #{i}");
        }
        assert_eq!(snapshot(&report.state), snapshot(&serial_state));
        assert_eq!(report.stats.decisions(), requests.len() as u64);
        assert_eq!(report.stats.shed_queue_full, 0);
        assert_eq!(report.stats.shed_deadline, 0);
        assert_eq!(report.stats.shed_retries, 0);

        let scan = journal::scan_bytes(&io.durable_bytes());
        assert_eq!(scan.discarded_tail_bytes, 0);
        let recovered = crate::wal::replay(net.state, 0, &scan.records, DIGEST).unwrap();
        assert_eq!(recovered.decided, requests.len() as u64);
        assert_eq!(snapshot(&recovered.state), snapshot(&report.state));
    }

    /// With a zero deadline every request expires before its commit turn:
    /// all are shed, each shed is WAL'd, and the state is untouched.
    #[test]
    fn zero_deadline_sheds_every_request() {
        let net = build_net(6);
        let requests = stream(net.src, net.dst, 6, 5, 11);
        let (journal, io) = mem_journal(FaultPlan::none());
        let mut c = cfg(2);
        c.deadline = Some(Duration::ZERO);
        let service = AdmissionService::start(net.state.clone(), journal, c, None, 0).unwrap();
        let tickets: Vec<_> = requests.iter().map(|r| service.submit(r.clone()).unwrap()).collect();
        for (i, t) in tickets.into_iter().enumerate() {
            let ack = t.wait().unwrap();
            assert_eq!(
                ack.body,
                AckBody::Shed { reason: ShedReason::DeadlineExceeded },
                "request #{i}"
            );
        }
        let report = service.drain();
        assert_eq!(report.failure, None);
        assert_eq!(report.stats.shed_deadline, requests.len() as u64);
        assert_eq!(snapshot(&report.state), snapshot(&net.state));
        let scan = journal::scan_bytes(&io.durable_bytes());
        assert_eq!(scan.records.len(), 1 + requests.len()); // RunStart + sheds
    }

    /// Queue overflow sheds the lowest value-density candidate: pending
    /// victims make room for denser arrivals, a sparser arrival is itself
    /// shed, and the survivors decide exactly as a serial pass over them.
    /// The state write lock is held during submission so occupancy (and
    /// therefore victim selection) is deterministic.
    #[test]
    fn queue_overflow_sheds_lowest_value_density() {
        let net = build_net(6);
        // One active slot at 100 Mbps → value density = valuation / 100.
        let by_density = |id: u32, d: f64| request(id, net.src, net.dst, 100.0, 1, 1, d * 100.0);
        let requests = [
            by_density(0, 1e6), // densest: never a victim
            by_density(1, 1.0), // shed when #3 arrives
            by_density(2, 2.0), // shed when #4 arrives
            by_density(3, 10.0),
            by_density(4, 10.0),
            by_density(5, 0.5), // sparser than all pending: sheds itself
        ];
        let (journal, _io) = mem_journal(FaultPlan::none());
        let mut c = cfg(1);
        c.queue_depth = 3;
        let service = AdmissionService::start(net.state.clone(), journal, c, None, 0).unwrap();
        let tickets: Vec<_> = {
            let _frozen = service.freeze_state();
            requests.iter().map(|r| service.submit(r.clone()).unwrap()).collect()
        };
        let acks: Vec<Ack> = tickets.into_iter().map(|t| t.wait().unwrap()).collect();
        let report = service.drain();
        assert_eq!(report.failure, None);
        assert_eq!(report.stats.shed_queue_full, 3, "{:?}", report.stats);
        for shed in [1usize, 2, 5] {
            assert_eq!(
                acks[shed].body,
                AckBody::Shed { reason: ShedReason::QueueFull },
                "request #{shed}"
            );
        }
        let serial = Cear::new(CearParams::default());
        let mut serial_state = net.state;
        for kept in [0usize, 3, 4] {
            let expect = serial_decide(&serial, &mut serial_state, &requests[kept]);
            assert_eq!(acks[kept].body, expect, "request #{kept}");
        }
        assert_eq!(snapshot(&report.state), snapshot(&serial_state));
    }

    /// Sustained occupancy trips degraded mode: the committer quotes
    /// serially itself (the worker pauses), and once the backlog drains
    /// the mode disengages — with every decision still equal to a serial
    /// pass.
    #[test]
    fn degraded_mode_decides_from_the_committer() {
        let net = build_net(6);
        let requests = stream(net.src, net.dst, 6, 4, 3);
        let (journal, _io) = mem_journal(FaultPlan::none());
        let mut c = cfg(1);
        c.degraded_enter = 2;
        c.degraded_exit = 0;
        let service = AdmissionService::start(net.state.clone(), journal, c, None, 0).unwrap();
        let tickets: Vec<_> = {
            let _frozen = service.freeze_state();
            let tickets: Vec<_> =
                requests.iter().map(|r| service.submit(r.clone()).unwrap()).collect();
            // Let the committer observe the backlog and trip the degraded
            // flag while everything is still frozen.
            std::thread::sleep(Duration::from_millis(5));
            tickets
        };
        let acks: Vec<Ack> = tickets.into_iter().map(|t| t.wait().unwrap()).collect();
        let report = service.drain();
        assert_eq!(report.failure, None);
        assert_eq!(report.stats.degraded_entries, 1, "{:?}", report.stats);
        // The single worker can hold at most one job; the committer
        // decided the rest itself.
        assert!(report.stats.degraded_quotes >= 3, "{:?}", report.stats);
        let serial = Cear::new(CearParams::default());
        let mut serial_state = net.state;
        for (i, (req, ack)) in requests.iter().zip(&acks).enumerate() {
            let expect = serial_decide(&serial, &mut serial_state, req);
            assert_eq!(ack.body, expect, "request #{i}");
        }
        assert_eq!(snapshot(&report.state), snapshot(&serial_state));
    }

    /// A stale read set bounces: the job re-enters the queue with backoff
    /// and one fewer attempt, the requote commits the decision the stale
    /// quote wanted, and a job with no attempts left is shed honestly —
    /// all WAL'd in order.
    #[test]
    fn stale_quotes_bounce_with_backoff_then_shed_on_exhaustion() {
        let net = build_net(6);
        let c = cfg(1);
        let shared = Arc::new(Shared {
            state: RwLock::new(net.state),
            q: Mutex::new(Q {
                pending: VecDeque::new(),
                staged: BTreeMap::new(),
                next_seq: 2,
                next_commit: 0,
                draining: false,
                dead: None,
                degraded: false,
                live_workers: 1,
                stats: ServeStats::default(),
            }),
            work_cv: Condvar::new(),
            commit_cv: Condvar::new(),
            cfg: c.clone(),
        });
        let (journal, io) = mem_journal(FaultPlan::none());
        let mut committer = Committer {
            shared: Arc::clone(&shared),
            journal,
            checkpoint_dir: None,
            reference: Cear::reference(CearParams::default()),
            jitter: 42,
            decided: 0,
            since_checkpoint: 0,
        };
        let cear = Cear::new(CearParams::default());
        let quote = |req: &Request| {
            let state = shared.state.read().unwrap();
            cear.quote_recording(req, &state)
        };
        let job = |seq: u64, attempts: u32, req: &Request| Job {
            seq,
            request: req.clone(),
            attempts_left: attempts,
            deadline: None,
            ready_at: None,
            backoff_us: 0,
            ack: Arc::new(AckSlot::default()),
        };

        // Quote, then invalidate a battery row the search read (epoch
        // bump only — no value changes, so a requote decides the same).
        let req = request(0, net.src, net.dst, 100.0, 1, 2, 1e7);
        let (result, reads) = quote(&req);
        let sat = reads.battery_sats().next().expect("quote read at least one battery row");
        shared.state.write().unwrap().debug_bump_battery_epoch(sat, 0);
        let j = job(0, 2, &req);
        let ack = Arc::clone(&j.ack);
        assert!(committer.handle(Staged::Quoted { job: j, result, reads }));
        let bounced = {
            let mut q = shared.q.lock().unwrap();
            assert_eq!(q.stats.conflicts, 1);
            assert_eq!(q.stats.requotes, 1);
            assert_eq!(q.next_commit, 0, "a bounce decides nothing");
            q.pending.pop_front().expect("bounced job requeued")
        };
        assert_eq!(bounced.attempts_left, 1);
        assert!(bounced.ready_at.is_some(), "backoff gate missing");
        assert!(
            (c.backoff_base_us..=c.backoff_cap_us).contains(&bounced.backoff_us),
            "backoff {} outside [{}, {}]",
            bounced.backoff_us,
            c.backoff_base_us,
            c.backoff_cap_us
        );

        let (result, reads) = quote(&bounced.request);
        assert!(committer.handle(Staged::Quoted { job: bounced, result, reads }));
        let first = ack.value.lock().unwrap().clone().expect("decided").expect("not dead");
        assert!(
            matches!(first.body, AckBody::Admitted { .. }),
            "an uncontended 100 Mbps request should admit: {:?}",
            first.body
        );

        // Exhaustion: one attempt left + a stale quote → honest shed.
        let req2 = request(1, net.src, net.dst, 100.0, 3, 4, 1e7);
        let (result, reads) = quote(&req2);
        let sat = reads.battery_sats().next().expect("quote read at least one battery row");
        shared.state.write().unwrap().debug_bump_battery_epoch(sat, 0);
        let j = job(1, 1, &req2);
        let ack2 = Arc::clone(&j.ack);
        assert!(committer.handle(Staged::Quoted { job: j, result, reads }));
        let second = ack2.value.lock().unwrap().clone().expect("decided").expect("not dead");
        assert_eq!(second.body, AckBody::Shed { reason: ShedReason::RetriesExhausted });
        {
            let q = shared.q.lock().unwrap();
            assert_eq!(q.stats.conflicts, 2);
            assert_eq!(q.stats.shed_retries, 1);
            assert_eq!(q.next_commit, 2);
        }
        let scan = journal::scan_bytes(&io.durable_bytes());
        assert_eq!(scan.records.len(), 2);
        assert!(matches!(scan.records[0], JournalRecord::Admission { .. }));
        assert!(matches!(
            scan.records[1],
            JournalRecord::Shed { reason: ShedReason::RetriesExhausted, .. }
        ));
    }

    /// A WAL sync failure kills the service: the victim's ticket and all
    /// later submissions resolve with the failure instead of hanging, and
    /// nothing past the failed append is durable.
    #[test]
    fn wal_failure_kills_the_service() {
        let net = build_net(6);
        // RunStart is ops {0: write, 1: sync}; the first decision's
        // fsync is op 3.
        let plan = FaultPlan { sync_fail_at: vec![3], ..FaultPlan::none() };
        let (journal, io) = mem_journal(plan);
        let service = AdmissionService::start(net.state, journal, cfg(2), None, 0).unwrap();
        let err =
            service.submit_blocking(request(0, net.src, net.dst, 100.0, 1, 2, 1e7)).unwrap_err();
        assert!(matches!(err, ServeError::Dead(_)), "{err}");
        assert!(service.is_dead());
        let err = service.submit(request(1, net.src, net.dst, 100.0, 1, 2, 1e7)).unwrap_err();
        assert!(matches!(err, ServeError::Dead(_)), "{err}");
        let report = service.drain();
        let failure = report.failure.expect("drain must report the failure");
        assert!(failure.contains("WAL append failed"), "{failure}");
        let scan = journal::scan_bytes(&io.durable_bytes());
        assert_eq!(scan.records.len(), 1, "only RunStart survived");
        assert!(matches!(scan.records[0], JournalRecord::RunStart { .. }));
    }

    /// Draining with work still queued decides everything before the
    /// threads exit — nothing is abandoned.
    #[test]
    fn drain_decides_everything_already_queued() {
        let net = build_net(6);
        let requests = stream(net.src, net.dst, 6, 8, 23);
        let (journal, _io) = mem_journal(FaultPlan::none());
        let service = AdmissionService::start(net.state.clone(), journal, cfg(2), None, 0).unwrap();
        let tickets: Vec<_> = {
            let _frozen = service.freeze_state();
            requests.iter().map(|r| service.submit(r.clone()).unwrap()).collect()
        };
        let report = service.drain();
        assert_eq!(report.failure, None);
        assert_eq!(report.stats.decisions(), requests.len() as u64);
        let serial = Cear::new(CearParams::default());
        let mut serial_state = net.state;
        for (i, (req, t)) in requests.iter().zip(tickets).enumerate() {
            let expect = serial_decide(&serial, &mut serial_state, req);
            assert_eq!(t.wait().unwrap().body, expect, "request #{i}");
        }
        assert_eq!(snapshot(&report.state), snapshot(&serial_state));
    }
}
