//! Batch-engine adapter: drive every decision of a `sb-sim` run through a
//! live [`AdmissionService`], proving at the [`RunMetrics`] level that the
//! service is behaviorally identical to the serial batch algorithm.
//!
//! [`ServedCear`] implements [`RoutingAlgorithm`] by submitting each
//! request to the service and mirroring admitted plans into the engine's
//! own state. Because the engine drives requests one at a time
//! (closed-loop, occupancy ≤ 1), no quote can conflict and nothing is
//! shed, so the service's decision stream — and therefore every metric —
//! equals serial CEAR's, at *any* worker count.

use crate::service::{AckBody, AdmissionService, DrainReport};
use crate::ServeConfig;
use sb_cear::{
    Cear, CearParams, Decision, KnownFailures, NetworkState, RejectReason, ReservationPlan,
    RoutingAlgorithm,
};
use sb_demand::Request;
use sb_sim::engine::{run_with_algorithm, PreparedNetwork};
use sb_sim::faultio::{FaultIo, FaultPlan};
use sb_sim::journal::Journal;
use sb_sim::{RunMetrics, ScenarioConfig};

/// A [`RoutingAlgorithm`] whose every decision is made by a live
/// [`AdmissionService`] instead of in-process CEAR.
///
/// Reports its name as `"CEAR"` — the decision stream is CEAR's, the
/// service is just where it runs — so [`RunMetrics`] from a serviced run
/// compare equal to a serial batch run.
pub struct ServedCear {
    service: AdmissionService,
    /// Local quoter backing [`RoutingAlgorithm::quote_plan`] (plan
    /// repair); decisions never flow through it.
    fallback: Cear,
}

impl ServedCear {
    /// Wraps a running service.
    pub fn new(service: AdmissionService, params: CearParams) -> Self {
        ServedCear { service, fallback: Cear::new(params) }
    }

    /// Hands the service back (e.g. to [`AdmissionService::drain`]).
    pub fn into_service(self) -> AdmissionService {
        self.service
    }
}

impl RoutingAlgorithm for ServedCear {
    fn name(&self) -> &'static str {
        "CEAR"
    }

    /// Submits to the service and mirrors the outcome into the engine's
    /// state.
    ///
    /// # Panics
    ///
    /// Panics if the service has died, if it shed the request (impossible
    /// in the engine's closed loop with no deadline configured), or if an
    /// admitted plan fails to commit into the engine's state — the states
    /// evolve in lockstep, so divergence is a bug, not a condition to
    /// handle.
    fn process(&mut self, request: &Request, state: &mut NetworkState) -> Decision {
        let ack = self
            .service
            .submit_blocking(request.clone())
            .unwrap_or_else(|e| panic!("admission service unavailable: {e}"));
        match ack.body {
            AckBody::Admitted { price, plan } => {
                state
                    .try_commit_plan(request, &plan)
                    .unwrap_or_else(|e| panic!("service/engine state diverged: {e:?}"));
                Decision::Accepted { plan, price }
            }
            AckBody::Rejected { reason } => Decision::Rejected { reason },
            AckBody::Shed { reason } => {
                panic!("request {} shed ({reason:?}) in closed-loop mode", request.id.0)
            }
        }
    }

    fn quote_plan(
        &self,
        request: &Request,
        state: &NetworkState,
        known: Option<&KnownFailures>,
    ) -> Result<(ReservationPlan, f64), RejectReason> {
        self.fallback.quote_avoiding(request, state, known)
    }
}

/// Runs the full batch engine with every decision serviced: starts an
/// [`AdmissionService`] over an in-memory WAL (a no-fault
/// [`FaultIo`]), drives [`run_with_algorithm`] through a [`ServedCear`],
/// and drains. Returns the run's metrics and the service's drain report.
///
/// # Panics
///
/// Panics if the service fails to start or misbehaves mid-run (see
/// [`ServedCear`]).
pub fn run_served(
    scenario: &ScenarioConfig,
    prepared: &PreparedNetwork,
    requests: &[Request],
    seed: u64,
    cfg: ServeConfig,
) -> (RunMetrics, DrainReport) {
    let state = NetworkState::new(prepared.series.clone(), &scenario.energy);
    let journal = Journal::from_io(Box::new(FaultIo::new(FaultPlan::none())));
    let service = AdmissionService::start(state, journal, cfg.clone(), None, 0)
        .unwrap_or_else(|e| panic!("cannot start admission service: {e}"));
    let mut algorithm = ServedCear::new(service, cfg.params);
    let metrics = run_with_algorithm(scenario, prepared, requests, &mut algorithm, seed);
    let report = algorithm.into_service().drain();
    (metrics, report)
}
