//! `sb-serve` — run the fault-tolerant admission service over a scenario
//! workload, with a durable WAL and kill-anywhere recovery.
//!
//! ```text
//! # fresh run
//! sb-serve --dir out --scale tiny --seed 0 --workers 4
//! # after a crash (or kill -9): recover and finish the stream
//! sb-serve --dir out --scale tiny --seed 0 --workers 4 --resume
//! ```
//!
//! The run writes into `--dir`:
//!
//! * `serve_wal.bin` — the decision WAL (engine journal format);
//! * `ckpt/` — periodic checkpoints when `--checkpoint-every` is set;
//! * `acks.bin` — framed [`sb_serve::proto::AckFrame`]s for every ack
//!   received this invocation;
//! * `digest.txt` — hex checksum over the full WAL record stream plus the
//!   final state snapshot. A killed-and-resumed run produces the same
//!   digest as an uninterrupted one (CI asserts exactly this).

use sb_cear::{CearParams, NetworkState};
use sb_serve::proto::{AckFrame, AckVerdict};
use sb_serve::service::AckBody;
use sb_serve::{wal, AdmissionService, ServeConfig};
use sb_sim::engine::{self, AlgorithmKind};
use sb_sim::journal::Journal;
use sb_sim::{checkpoint, journal, ScenarioConfig};
use sb_wire::{checksum, Writer};
use std::time::Duration;

fn fail(msg: String) -> ! {
    eprintln!("sb-serve: {msg}");
    std::process::exit(2);
}

fn main() {
    let args =
        sb_serve::args::parse_serve_args(std::env::args().skip(1)).unwrap_or_else(|e| fail(e));
    let scenario = match args.scale.as_str() {
        "fast" => ScenarioConfig::fast(),
        _ => ScenarioConfig::tiny(),
    };
    let digest =
        engine::run_digest(&scenario, &AlgorithmKind::Cear(CearParams::default()), args.seed);
    let prepared = engine::prepare(&scenario, args.seed);
    let mut requests = engine::workload(&scenario, &prepared, args.seed);
    if let Some(cap) = args.requests {
        requests.truncate(cap);
    }

    std::fs::create_dir_all(&args.dir)
        .unwrap_or_else(|e| fail(format!("cannot create {}: {e}", args.dir.display())));
    let wal_path = args.dir.join("serve_wal.bin");
    let ckpt_dir = args.dir.join("ckpt");
    std::fs::create_dir_all(&ckpt_dir)
        .unwrap_or_else(|e| fail(format!("cannot create {}: {e}", ckpt_dir.display())));

    let (journal, state, decided) = if args.resume {
        let scan = journal::scan(&wal_path)
            .unwrap_or_else(|e| fail(format!("cannot scan {}: {e}", wal_path.display())));
        if scan.discarded_tail_bytes > 0 {
            eprintln!(
                "sb-serve: discarded {} torn tail bytes (never acknowledged)",
                scan.discarded_tail_bytes
            );
        }
        let ckpt = checkpoint::load_latest(&ckpt_dir, digest)
            .unwrap_or_else(|e| fail(format!("cannot load checkpoints: {e}")));
        let (base, base_decided) = match &ckpt {
            Some(c) => {
                let (n, state) =
                    wal::decode_checkpoint_payload(prepared.series.clone(), &c.payload)
                        .unwrap_or_else(|e| fail(format!("{}: {e}", c.path.display())));
                eprintln!("sb-serve: checkpoint {} covers {n} decisions", c.path.display());
                (state, n)
            }
            None => (NetworkState::new(prepared.series.clone(), &scenario.energy), 0),
        };
        let recovered = wal::replay(base, base_decided, &scan.records, digest)
            .unwrap_or_else(|e| fail(format!("WAL replay failed: {e}")));
        eprintln!(
            "sb-serve: recovered {} durable decisions, resuming at request #{}",
            recovered.decided, recovered.decided
        );
        let journal = Journal::open_append(&wal_path, scan.valid_len)
            .unwrap_or_else(|e| fail(format!("cannot reopen WAL: {e}")));
        (journal, recovered.state, recovered.decided)
    } else {
        let _ = std::fs::remove_file(&wal_path);
        checkpoint::clear(&ckpt_dir)
            .unwrap_or_else(|e| fail(format!("cannot clear checkpoints: {e}")));
        let journal =
            Journal::create(&wal_path).unwrap_or_else(|e| fail(format!("cannot create WAL: {e}")));
        (journal, NetworkState::new(prepared.series.clone(), &scenario.energy), 0)
    };

    let mut cfg = ServeConfig::new(digest, args.seed);
    cfg.workers = args.workers;
    cfg.queue_depth = args.queue_depth;
    cfg.retry_limit = args.retry_limit;
    cfg.checkpoint_every = args.checkpoint_every;
    cfg.deadline = args.deadline_us.map(Duration::from_micros);
    cfg.degraded_enter = (args.queue_depth * 3 / 4).max(2);
    cfg.degraded_exit = (args.queue_depth / 4).min(cfg.degraded_enter - 1);

    let service = AdmissionService::start(state, journal, cfg, Some(ckpt_dir), decided)
        .unwrap_or_else(|e| fail(format!("cannot start service: {e}")));

    let mut tickets = Vec::new();
    for request in requests.iter().skip(decided as usize) {
        if args.throttle_us > 0 {
            std::thread::sleep(Duration::from_micros(args.throttle_us));
        }
        match service.submit(request.clone()) {
            Ok(ticket) => tickets.push(ticket),
            Err(e) => {
                eprintln!("sb-serve: submissions stopped: {e}");
                break;
            }
        }
    }
    let mut acks_bytes = Vec::new();
    let mut lost = 0u64;
    for ticket in tickets {
        match ticket.wait() {
            Ok(ack) => {
                let verdict = match &ack.body {
                    AckBody::Admitted { price, .. } => AckVerdict::Admitted { price: *price },
                    AckBody::Rejected { reason } => AckVerdict::Rejected { reason: *reason },
                    AckBody::Shed { reason } => AckVerdict::Shed { reason: *reason },
                };
                AckFrame { seq: ack.seq, request_id: ack.request_id, verdict }
                    .write(&mut acks_bytes);
            }
            Err(_) => lost += 1,
        }
    }
    let report = service.drain();

    // The run digest: every durable WAL record (in digest-canonical form,
    // see `wal::canonical_record`) plus the final state. A kill/resume
    // sequence must reproduce an uninterrupted run's value.
    let scan = journal::scan(&wal_path)
        .unwrap_or_else(|e| fail(format!("cannot re-scan {}: {e}", wal_path.display())));
    let mut w = Writer::new();
    for record in &scan.records {
        wal::canonical_record(record).encode(&mut w);
    }
    report.state.encode_snapshot(&mut w);
    let run_digest = format!("{:016x}", checksum(&w.into_bytes()));
    std::fs::write(args.dir.join("digest.txt"), format!("{run_digest}\n"))
        .unwrap_or_else(|e| fail(format!("cannot write digest.txt: {e}")));
    std::fs::write(args.dir.join("acks.bin"), &acks_bytes)
        .unwrap_or_else(|e| fail(format!("cannot write acks.bin: {e}")));

    let s = &report.stats;
    println!(
        "sb-serve: digest={run_digest} decisions={} admitted={} rejected={} shed={} \
         conflicts={} requotes={} degraded_entries={} checkpoints={} lost_acks={lost}",
        s.decisions(),
        s.admitted,
        s.rejected_no_path + s.rejected_price + s.rejected_commit,
        s.shed_queue_full + s.shed_deadline + s.shed_retries,
        s.conflicts,
        s.requotes,
        s.degraded_entries,
        s.checkpoints,
    );
    if let Some(failure) = report.failure {
        fail(format!("service died: {failure}"));
    }
}
