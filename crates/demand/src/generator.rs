//! Seeded workload generation reproducing the paper's demand model.
//!
//! Per §VI-A of the paper:
//!
//! * arrivals are Poisson with a per-minute rate (default 10; the sweep
//!   uses 5, 15, 20, 25);
//! * each request's duration is uniform in 1–10 minutes;
//! * request sizes follow an exponential distribution "ranging from 500
//!   Mbps to 2000 Mbps with an expected value of 1250 Mbps" — implemented
//!   as an exponential draw with the given mean, clamped into the range;
//! * source-destination pairs are drawn uniformly from a pre-selected pair
//!   catalog (the paper selects ten such pairs);
//! * the valuation is constant by default (2.3 × 10⁹), so the social
//!   welfare ratio equals the request success ratio.

use crate::pattern::ArrivalPattern;
use crate::request::{RateProfile, Request, RequestId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sb_topology::{NodeId, SlotIndex};
use serde::{Deserialize, Serialize};

/// How request rates (Mbps) are drawn.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum SizeDistribution {
    /// Exponential with the given mean, clamped into `[min, max]`
    /// (the paper's distribution).
    Exponential {
        /// Mean of the (pre-clamp) exponential, Mbps.
        mean: f64,
        /// Lower clamp, Mbps.
        min: f64,
        /// Upper clamp, Mbps.
        max: f64,
    },
    /// Uniform in `[min, max]`.
    Uniform {
        /// Lower bound, Mbps.
        min: f64,
        /// Upper bound, Mbps.
        max: f64,
    },
    /// Every request demands the same rate.
    Constant(f64),
}

impl SizeDistribution {
    /// The paper's default: Exp(mean 1250) clamped to [500, 2000] Mbps.
    pub fn paper_default() -> Self {
        SizeDistribution::Exponential { mean: 1250.0, min: 500.0, max: 2000.0 }
    }

    fn sample(&self, rng: &mut StdRng) -> f64 {
        match *self {
            SizeDistribution::Exponential { mean, min, max } => {
                let u: f64 = rng.gen_range(f64::EPSILON..1.0);
                (-mean * u.ln()).clamp(min, max)
            }
            SizeDistribution::Uniform { min, max } => rng.gen_range(min..=max),
            SizeDistribution::Constant(r) => r,
        }
    }
}

/// How request valuations are assigned.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum ValuationModel {
    /// Every request has the same valuation (paper default: 2.3 × 10⁹),
    /// making social-welfare ratio ≡ request success ratio.
    Constant(f64),
    /// Valuation proportional to the request's total data volume:
    /// `per_mbit × Σ_T δ(T)·slot` — models per-byte pricing.
    PerMbit {
        /// Price per megabit.
        per_mbit: f64,
    },
    /// Uniform in `[min, max]` — heterogeneous-value auctions.
    Uniform {
        /// Lower bound.
        min: f64,
        /// Upper bound.
        max: f64,
    },
}

impl ValuationModel {
    /// The paper's default constant valuation.
    pub fn paper_default() -> Self {
        ValuationModel::Constant(2.3e9)
    }
}

/// Workload generator configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkloadConfig {
    /// Candidate source-destination pairs; each request picks one
    /// uniformly. Must be non-empty.
    pub pairs: Vec<(NodeId, NodeId)>,
    /// Mean request arrivals per slot (paper: slots are one minute, so
    /// this is the paper's "requests per minute").
    pub arrivals_per_slot: f64,
    /// Number of slots over which requests arrive.
    pub horizon_slots: u32,
    /// Request duration in slots: uniform in
    /// `[min_duration_slots, max_duration_slots]`.
    pub min_duration_slots: u32,
    /// Maximum duration, inclusive.
    pub max_duration_slots: u32,
    /// Rate distribution.
    pub size: SizeDistribution,
    /// Valuation model.
    pub valuation: ValuationModel,
    /// Slot duration in seconds (used by volume-proportional valuations).
    pub slot_duration_s: f64,
    /// Time-varying modulation of the arrival rate.
    pub pattern: ArrivalPattern,
}

impl Default for WorkloadConfig {
    fn default() -> Self {
        WorkloadConfig {
            pairs: Vec::new(),
            arrivals_per_slot: 10.0,
            horizon_slots: 384,
            min_duration_slots: 1,
            max_duration_slots: 10,
            size: SizeDistribution::paper_default(),
            valuation: ValuationModel::paper_default(),
            slot_duration_s: 60.0,
            pattern: ArrivalPattern::Constant,
        }
    }
}

/// Generates the full request sequence for one run, deterministically from
/// `seed`.
///
/// Requests are ordered by arrival slot (their `start`), with ids in
/// arrival order. Durations are truncated at the horizon end so every
/// request fits inside the simulated window.
///
/// # Panics
///
/// Panics if the pair catalog is empty, the horizon is zero, or the
/// duration range is inverted.
pub fn generate_workload(config: &WorkloadConfig, seed: u64) -> Vec<Request> {
    assert!(!config.pairs.is_empty(), "workload needs at least one source-destination pair");
    assert!(config.horizon_slots > 0, "horizon must be non-empty");
    assert!(
        config.min_duration_slots >= 1 && config.min_duration_slots <= config.max_duration_slots,
        "invalid duration range"
    );
    let mut rng = StdRng::seed_from_u64(seed);
    let mut requests = Vec::new();
    for slot in 0..config.horizon_slots {
        let rate = config.arrivals_per_slot * config.pattern.multiplier_at(slot);
        let n = poisson(&mut rng, rate);
        for _ in 0..n {
            let (source, destination) = config.pairs[rng.gen_range(0..config.pairs.len())];
            let duration = rng.gen_range(config.min_duration_slots..=config.max_duration_slots);
            let start = SlotIndex(slot);
            let end = SlotIndex((slot + duration - 1).min(config.horizon_slots - 1));
            let rate_mbps = config.size.sample(&mut rng);
            let mut request = Request {
                id: RequestId(requests.len() as u32),
                source,
                destination,
                rate: RateProfile::Constant(rate_mbps),
                start,
                end,
                valuation: 0.0,
            };
            request.valuation = match config.valuation {
                ValuationModel::Constant(v) => v,
                ValuationModel::PerMbit { per_mbit } => {
                    per_mbit * request.total_volume_mbit(config.slot_duration_s)
                }
                ValuationModel::Uniform { min, max } => rng.gen_range(min..=max),
            };
            requests.push(request);
        }
    }
    requests
}

/// Draws from a Poisson distribution by Knuth's product-of-uniforms method
/// (adequate for the paper's small rates, ≤ 25/slot).
fn poisson(rng: &mut StdRng, lambda: f64) -> u32 {
    if lambda <= 0.0 {
        return 0;
    }
    let l = (-lambda).exp();
    let mut k = 0u32;
    let mut p = 1.0;
    loop {
        p *= rng.gen_range(0.0..1.0f64);
        if p <= l {
            return k;
        }
        k += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn cfg() -> WorkloadConfig {
        WorkloadConfig {
            pairs: vec![(NodeId(100), NodeId(200)), (NodeId(300), NodeId(400))],
            horizon_slots: 100,
            ..WorkloadConfig::default()
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let a = generate_workload(&cfg(), 7);
        let b = generate_workload(&cfg(), 7);
        assert_eq!(a, b);
        let c = generate_workload(&cfg(), 8);
        assert_ne!(a, c);
    }

    #[test]
    fn arrival_rate_roughly_matches() {
        let requests = generate_workload(&cfg(), 1);
        // E[count] = 10/slot × 100 slots = 1000; Poisson σ ≈ 32.
        let n = requests.len() as f64;
        assert!((850.0..1150.0).contains(&n), "count {n}");
    }

    #[test]
    fn ids_are_sequential_and_sorted_by_arrival() {
        let requests = generate_workload(&cfg(), 2);
        for (k, r) in requests.iter().enumerate() {
            assert_eq!(r.id, RequestId(k as u32));
        }
        for w in requests.windows(2) {
            assert!(w[0].start <= w[1].start, "arrivals out of order");
        }
    }

    #[test]
    fn durations_within_bounds_and_horizon() {
        let requests = generate_workload(&cfg(), 3);
        for r in &requests {
            assert!(r.duration_slots() >= 1 && r.duration_slots() <= 10);
            assert!(r.end.0 < 100);
        }
    }

    #[test]
    fn rates_within_clamp() {
        let requests = generate_workload(&cfg(), 4);
        let mut saw_low = false;
        let mut saw_high = false;
        for r in &requests {
            let rate = r.rate.peak_rate();
            assert!((500.0..=2000.0).contains(&rate), "rate {rate}");
            saw_low |= rate < 900.0;
            saw_high |= rate > 1600.0;
        }
        assert!(saw_low && saw_high, "distribution should span the clamp range");
    }

    #[test]
    fn exponential_mass_concentrates_low() {
        // An exponential clamped to [500,2000] puts far more mass below the
        // midpoint than a uniform would.
        let requests = generate_workload(&cfg(), 5);
        let below = requests.iter().filter(|r| r.rate.peak_rate() < 1250.0).count();
        assert!(below * 2 > requests.len(), "{below}/{}", requests.len());
    }

    #[test]
    fn constant_valuation_applied() {
        let requests = generate_workload(&cfg(), 6);
        assert!(requests.iter().all(|r| r.valuation == 2.3e9));
    }

    #[test]
    fn per_mbit_valuation_scales_with_volume() {
        let mut config = cfg();
        config.valuation = ValuationModel::PerMbit { per_mbit: 2.0 };
        let requests = generate_workload(&config, 7);
        for r in &requests {
            let expected = 2.0 * r.total_volume_mbit(60.0);
            assert!((r.valuation - expected).abs() < 1e-6);
        }
    }

    #[test]
    fn pairs_both_used() {
        let requests = generate_workload(&cfg(), 8);
        let first = requests.iter().filter(|r| r.source == NodeId(100)).count();
        assert!(first > 0 && first < requests.len());
    }

    #[test]
    fn burst_pattern_concentrates_arrivals() {
        let mut config = cfg();
        config.pattern =
            ArrivalPattern::Burst { start_slot: 40, duration_slots: 20, multiplier: 6.0 };
        let requests = generate_workload(&config, 11);
        let in_burst = requests.iter().filter(|r| (40..60).contains(&r.start.0)).count() as f64;
        let outside = (requests.len() as f64 - in_burst).max(1.0);
        // Burst slots are 20/100 of the horizon but 6× the rate: the
        // per-slot density inside should be ~6× the density outside.
        let density_ratio = (in_burst / 20.0) / (outside / 80.0);
        assert!(density_ratio > 3.0, "burst density ratio {density_ratio}");
    }

    #[test]
    fn diurnal_pattern_keeps_volume_comparable() {
        let mut config = cfg();
        config.pattern = ArrivalPattern::Diurnal { amplitude: 0.8, period_slots: 50.0, phase: 0.0 };
        let modulated = generate_workload(&config, 12).len() as f64;
        config.pattern = ArrivalPattern::Constant;
        let constant = generate_workload(&config, 12).len() as f64;
        assert!((modulated / constant - 1.0).abs() < 0.25, "{modulated} vs {constant}");
    }

    #[test]
    fn zero_rate_yields_no_requests() {
        let mut config = cfg();
        config.arrivals_per_slot = 0.0;
        assert!(generate_workload(&config, 9).is_empty());
    }

    #[test]
    #[should_panic(expected = "at least one source-destination pair")]
    fn empty_pairs_panics() {
        let config = WorkloadConfig { pairs: vec![], ..WorkloadConfig::default() };
        let _ = generate_workload(&config, 0);
    }

    proptest! {
        #[test]
        fn prop_poisson_mean_tracks_lambda(seed in 0u64..1000) {
            let mut rng = StdRng::seed_from_u64(seed);
            let n = 400;
            let total: u32 = (0..n).map(|_| poisson(&mut rng, 5.0)).sum();
            let mean = total as f64 / n as f64;
            // 5 ± 5σ/√n ≈ 5 ± 0.56
            prop_assert!((4.2..5.8).contains(&mean), "mean {mean}");
        }

        #[test]
        fn prop_workload_valid_for_any_seed(seed in 0u64..200, rate in 0.1..30.0f64) {
            let mut config = cfg();
            config.arrivals_per_slot = rate;
            config.horizon_slots = 20;
            for r in generate_workload(&config, seed) {
                prop_assert!(r.start <= r.end);
                prop_assert!(r.end.0 < 20);
                prop_assert!(r.valuation > 0.0);
                prop_assert!(r.rate.peak_rate() >= 500.0);
            }
        }
    }
}
