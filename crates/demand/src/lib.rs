//! Request and workload models for the space-booking simulator.
//!
//! The paper's demand model (§III-B): online-arriving data-transfer
//! requests `R_i = (u_s, u_d, δ_i, st_i, ed_i, ρ_i)` — source, destination,
//! per-slot data-rate demand, start/end slots and a valuation (the maximum
//! price the user will pay). The evaluation generates them with Poisson
//! arrivals (5–25 per minute), durations uniform in 1–10 minutes, rates
//! exponential in [500, 2000] Mbps with mean 1250, and a constant valuation.
//!
//! * [`request`] — the request type and rate profiles;
//! * [`generator`] — the seeded workload generator reproducing the paper's
//!   distributions;
//! * [`pattern`] — time-varying arrival-rate modulation (diurnal cycles,
//!   flash-crowd bursts) extending the paper's constant-rate setting.
//!
//! # Example
//!
//! ```
//! use sb_demand::generator::{WorkloadConfig, generate_workload};
//! use sb_topology::NodeId;
//!
//! let cfg = WorkloadConfig {
//!     pairs: vec![(NodeId(10), NodeId(20)), (NodeId(30), NodeId(40))],
//!     horizon_slots: 60,
//!     ..WorkloadConfig::default()
//! };
//! let requests = generate_workload(&cfg, 42);
//! // Same seed → identical workload.
//! assert_eq!(requests, generate_workload(&cfg, 42));
//! ```

#![warn(missing_docs)]
pub mod generator;
pub mod pattern;
pub mod request;

pub use generator::{generate_workload, SizeDistribution, ValuationModel, WorkloadConfig};
pub use pattern::ArrivalPattern;
pub use request::{RateProfile, Request, RequestId};
