//! Time-varying arrival patterns.
//!
//! The paper's evaluation uses a constant Poisson rate, but its motivation
//! is all about *uneven* demand: diurnal cycles follow population across
//! time zones, and disasters produce sudden regional bursts. This module
//! modulates the per-slot arrival rate so those regimes can be simulated
//! (and CEAR's long-horizon pricing stressed) without changing the
//! generator.

use serde::{Deserialize, Serialize};

/// How the mean arrival rate evolves over the horizon.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub enum ArrivalPattern {
    /// The paper's setting: the same mean rate in every slot.
    #[default]
    Constant,
    /// A sinusoidal diurnal cycle: rate multiplied by
    /// `1 + amplitude·sin(2π·(t/period + phase))`, clamped at zero.
    Diurnal {
        /// Relative swing, `[0, 1]` for a non-negative rate.
        amplitude: f64,
        /// Cycle length in slots (e.g. 1440 one-minute slots per day).
        period_slots: f64,
        /// Phase offset as a fraction of the period.
        phase: f64,
    },
    /// A flash-crowd burst: the base rate everywhere except
    /// `[start, start+duration)`, where it is multiplied by `multiplier`.
    Burst {
        /// First slot of the burst.
        start_slot: u32,
        /// Burst length in slots.
        duration_slots: u32,
        /// Rate multiplier during the burst (≥ 0; e.g. 5.0).
        multiplier: f64,
    },
}

impl ArrivalPattern {
    /// The rate multiplier for slot `t` (the base rate is multiplied by
    /// this; always ≥ 0).
    pub fn multiplier_at(&self, t: u32) -> f64 {
        match *self {
            ArrivalPattern::Constant => 1.0,
            ArrivalPattern::Diurnal { amplitude, period_slots, phase } => {
                let x = t as f64 / period_slots + phase;
                (1.0 + amplitude * (core::f64::consts::TAU * x).sin()).max(0.0)
            }
            ArrivalPattern::Burst { start_slot, duration_slots, multiplier } => {
                if (start_slot..start_slot.saturating_add(duration_slots)).contains(&t) {
                    multiplier.max(0.0)
                } else {
                    1.0
                }
            }
        }
    }

    /// The average multiplier over a horizon — useful for keeping total
    /// offered load comparable across patterns.
    pub fn mean_multiplier(&self, horizon_slots: u32) -> f64 {
        if horizon_slots == 0 {
            return 1.0;
        }
        (0..horizon_slots).map(|t| self.multiplier_at(t)).sum::<f64>() / horizon_slots as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn constant_is_identity() {
        let p = ArrivalPattern::Constant;
        for t in [0, 7, 1000] {
            assert_eq!(p.multiplier_at(t), 1.0);
        }
        assert_eq!(p.mean_multiplier(100), 1.0);
    }

    #[test]
    fn diurnal_oscillates_around_one() {
        let p = ArrivalPattern::Diurnal { amplitude: 0.5, period_slots: 96.0, phase: 0.0 };
        assert!((p.multiplier_at(24) - 1.5).abs() < 1e-9); // quarter period: peak
        assert!((p.multiplier_at(72) - 0.5).abs() < 1e-9); // three quarters: trough
        let mean = p.mean_multiplier(96);
        assert!((mean - 1.0).abs() < 1e-6, "full cycles average to 1, got {mean}");
    }

    #[test]
    fn diurnal_clamps_at_zero() {
        let p = ArrivalPattern::Diurnal { amplitude: 2.0, period_slots: 4.0, phase: 0.0 };
        assert_eq!(p.multiplier_at(3), 0.0); // 1 + 2·sin(3π/2) = −1 → 0
    }

    #[test]
    fn burst_window_is_half_open() {
        let p = ArrivalPattern::Burst { start_slot: 10, duration_slots: 5, multiplier: 4.0 };
        assert_eq!(p.multiplier_at(9), 1.0);
        assert_eq!(p.multiplier_at(10), 4.0);
        assert_eq!(p.multiplier_at(14), 4.0);
        assert_eq!(p.multiplier_at(15), 1.0);
    }

    #[test]
    fn burst_mean_accounts_for_window() {
        let p = ArrivalPattern::Burst { start_slot: 0, duration_slots: 10, multiplier: 3.0 };
        // 10 slots at 3× plus 10 at 1× over 20 slots → 2.0.
        assert!((p.mean_multiplier(20) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn burst_saturating_end() {
        let p =
            ArrivalPattern::Burst { start_slot: u32::MAX - 1, duration_slots: 10, multiplier: 2.0 };
        assert_eq!(p.multiplier_at(u32::MAX - 1), 2.0);
        assert_eq!(p.multiplier_at(0), 1.0);
    }

    proptest! {
        #[test]
        fn prop_multiplier_nonnegative(amp in 0.0..5.0f64, period in 1.0..500.0f64, phase in 0.0..1.0f64, t in 0u32..10_000) {
            let p = ArrivalPattern::Diurnal { amplitude: amp, period_slots: period, phase };
            prop_assert!(p.multiplier_at(t) >= 0.0);
        }

        #[test]
        fn prop_mean_multiplier_bounded(mult in 0.0..10.0f64, start in 0u32..50, dur in 0u32..50) {
            let p = ArrivalPattern::Burst { start_slot: start, duration_slots: dur, multiplier: mult };
            let mean = p.mean_multiplier(100);
            prop_assert!(mean >= 0.0 && mean <= mult.max(1.0) + 1e-9);
        }
    }
}
