//! The data-transfer request type.

use sb_topology::{NodeId, SlotIndex};
use serde::{Deserialize, Serialize};

/// Identifier of a request, in arrival order.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct RequestId(pub u32);

impl RequestId {
    /// The request id as a `usize` array index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl core::fmt::Display for RequestId {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "R{}", self.0)
    }
}

/// The per-slot data-rate demand `δ_i(T)` of a request.
///
/// The paper's evaluation uses constant rates; arbitrary per-slot profiles
/// are supported for completeness (e.g. ramping video traffic).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum RateProfile {
    /// The same rate in every active slot, Mbps.
    Constant(f64),
    /// An explicit rate per active slot, Mbps, indexed from the start slot.
    /// Slots beyond the vector reuse its last entry.
    PerSlot(Vec<f64>),
}

impl RateProfile {
    /// The demanded rate (Mbps) in the `k`-th active slot of the request
    /// (`k = 0` at the start slot).
    ///
    /// # Panics
    ///
    /// Panics if a `PerSlot` profile is empty.
    pub fn rate_at_offset(&self, k: usize) -> f64 {
        match self {
            RateProfile::Constant(r) => *r,
            RateProfile::PerSlot(v) => {
                assert!(!v.is_empty(), "empty per-slot rate profile");
                v[k.min(v.len() - 1)]
            }
        }
    }

    /// The maximum rate over all active slots, Mbps.
    pub fn peak_rate(&self) -> f64 {
        match self {
            RateProfile::Constant(r) => *r,
            RateProfile::PerSlot(v) => v.iter().copied().fold(0.0, f64::max),
        }
    }
}

/// An online-arriving data-transfer request
/// `R_i = (u_s, u_d, δ_i, st_i, ed_i, ρ_i)`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Request {
    /// Identifier (arrival order).
    pub id: RequestId,
    /// Source node `u_s` (a ground or space user).
    pub source: NodeId,
    /// Destination node `u_d`.
    pub destination: NodeId,
    /// Per-slot rate demand `δ_i`.
    pub rate: RateProfile,
    /// First active slot `st_i`.
    pub start: SlotIndex,
    /// Last active slot `ed_i` (inclusive).
    pub end: SlotIndex,
    /// Valuation `ρ_i`: the maximum total price the user will pay.
    pub valuation: f64,
}

impl Request {
    /// Number of active slots (`ed − st + 1`).
    ///
    /// # Panics
    ///
    /// Panics in debug builds when `end < start`.
    pub fn duration_slots(&self) -> usize {
        debug_assert!(self.end >= self.start, "request ends before it starts");
        (self.end.0 - self.start.0 + 1) as usize
    }

    /// `true` when the request is active at `slot` — the paper's
    /// `κ(T, i)` indicator.
    pub fn is_active_at(&self, slot: SlotIndex) -> bool {
        self.start <= slot && slot <= self.end
    }

    /// The demanded rate (Mbps) at an absolute slot, or 0 when inactive.
    pub fn rate_at(&self, slot: SlotIndex) -> f64 {
        if !self.is_active_at(slot) {
            return 0.0;
        }
        self.rate.rate_at_offset((slot.0 - self.start.0) as usize)
    }

    /// Iterates over the request's active slots.
    pub fn active_slots(&self) -> impl Iterator<Item = SlotIndex> {
        (self.start.0..=self.end.0).map(SlotIndex)
    }

    /// Total data volume over the request's lifetime, megabits, assuming
    /// `slot_duration_s`-second slots.
    pub fn total_volume_mbit(&self, slot_duration_s: f64) -> f64 {
        self.active_slots().map(|t| self.rate_at(t) * slot_duration_s).sum()
    }

    /// Serializes the request bit-exactly into `w` (part of the journal
    /// and checkpoint formats; see [`Request::decode`]).
    pub fn encode(&self, w: &mut sb_wire::Writer) {
        w.u32(self.id.0);
        w.u32(self.source.0);
        w.u32(self.destination.0);
        match &self.rate {
            RateProfile::Constant(rate) => {
                w.u8(0);
                w.f64(*rate);
            }
            RateProfile::PerSlot(rates) => {
                w.u8(1);
                w.seq(rates, |w, rate| w.f64(*rate));
            }
        }
        w.u32(self.start.0);
        w.u32(self.end.0);
        w.f64(self.valuation);
    }

    /// Restores a request written by [`Request::encode`].
    ///
    /// # Errors
    ///
    /// Returns a [`sb_wire::WireError`] on truncated or malformed input.
    pub fn decode(r: &mut sb_wire::Reader<'_>) -> Result<Self, sb_wire::WireError> {
        let id = RequestId(r.u32()?);
        let source = NodeId(r.u32()?);
        let destination = NodeId(r.u32()?);
        let rate = match r.u8()? {
            0 => RateProfile::Constant(r.f64()?),
            1 => {
                let n = r.seq_len(8)?;
                RateProfile::PerSlot((0..n).map(|_| r.f64()).collect::<Result<_, _>>()?)
            }
            tag => return Err(sb_wire::WireError::BadTag { tag, context: "RateProfile" }),
        };
        let start = SlotIndex(r.u32()?);
        let end = SlotIndex(r.u32()?);
        let valuation = r.f64()?;
        Ok(Request { id, source, destination, rate, start, end, valuation })
    }

    /// The unserved tail of the request from slot `from` on: same
    /// endpoints, valuation and end slot, but starting at
    /// `max(from, start)`, with the rate profile re-based so that
    /// [`Request::rate_at`] returns the same per-slot rates as the
    /// original. Used by plan repair to re-route what a failure broke.
    ///
    /// # Panics
    ///
    /// Panics in debug builds when `from > end` (there is no suffix), and
    /// on an empty `PerSlot` profile.
    pub fn suffix_from(&self, from: SlotIndex) -> Request {
        debug_assert!(from <= self.end, "suffix starts after the request ends");
        let from = from.max(self.start);
        let rate = match &self.rate {
            RateProfile::Constant(r) => RateProfile::Constant(*r),
            RateProfile::PerSlot(v) => {
                assert!(!v.is_empty(), "empty per-slot rate profile");
                let skip = (from.0 - self.start.0) as usize;
                let tail = if skip >= v.len() { vec![v[v.len() - 1]] } else { v[skip..].to_vec() };
                RateProfile::PerSlot(tail)
            }
        };
        Request { rate, start: from, ..self.clone() }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn req() -> Request {
        Request {
            id: RequestId(7),
            source: NodeId(1),
            destination: NodeId(2),
            rate: RateProfile::Constant(1000.0),
            start: SlotIndex(5),
            end: SlotIndex(9),
            valuation: 2.3e9,
        }
    }

    #[test]
    fn duration_and_activity() {
        let r = req();
        assert_eq!(r.duration_slots(), 5);
        assert!(!r.is_active_at(SlotIndex(4)));
        assert!(r.is_active_at(SlotIndex(5)));
        assert!(r.is_active_at(SlotIndex(9)));
        assert!(!r.is_active_at(SlotIndex(10)));
        assert_eq!(r.active_slots().count(), 5);
    }

    #[test]
    fn rate_constant_profile() {
        let r = req();
        assert_eq!(r.rate_at(SlotIndex(5)), 1000.0);
        assert_eq!(r.rate_at(SlotIndex(9)), 1000.0);
        assert_eq!(r.rate_at(SlotIndex(4)), 0.0);
        assert_eq!(r.rate.peak_rate(), 1000.0);
    }

    #[test]
    fn rate_per_slot_profile() {
        let mut r = req();
        r.rate = RateProfile::PerSlot(vec![100.0, 200.0, 300.0]);
        assert_eq!(r.rate_at(SlotIndex(5)), 100.0);
        assert_eq!(r.rate_at(SlotIndex(6)), 200.0);
        assert_eq!(r.rate_at(SlotIndex(7)), 300.0);
        // Beyond the vector: last entry repeats.
        assert_eq!(r.rate_at(SlotIndex(9)), 300.0);
        assert_eq!(r.rate.peak_rate(), 300.0);
    }

    #[test]
    fn total_volume() {
        let r = req();
        // 5 slots × 1000 Mbps × 60 s = 300000 Mbit.
        assert_eq!(r.total_volume_mbit(60.0), 300_000.0);
    }

    #[test]
    fn single_slot_request() {
        let mut r = req();
        r.end = r.start;
        assert_eq!(r.duration_slots(), 1);
        assert_eq!(r.active_slots().count(), 1);
    }

    #[test]
    fn suffix_preserves_per_slot_rates() {
        let mut r = req();
        r.rate = RateProfile::PerSlot(vec![100.0, 200.0, 300.0, 400.0, 500.0]);
        let s = r.suffix_from(SlotIndex(7));
        assert_eq!(s.start, SlotIndex(7));
        assert_eq!(s.end, r.end);
        assert_eq!(s.valuation, r.valuation);
        for t in 7..=9 {
            assert_eq!(s.rate_at(SlotIndex(t)), r.rate_at(SlotIndex(t)), "slot {t}");
        }
        assert_eq!(s.rate_at(SlotIndex(6)), 0.0, "suffix inactive before its start");
        // Constant profiles are untouched; `from` before start clamps.
        let c = req().suffix_from(SlotIndex(0));
        assert_eq!(c, req());
    }

    #[test]
    fn request_id_display() {
        assert_eq!(format!("{}", RequestId(3)), "R3");
        assert_eq!(RequestId(3).index(), 3);
    }

    #[test]
    #[should_panic(expected = "empty per-slot")]
    fn empty_per_slot_profile_panics() {
        let _ = RateProfile::PerSlot(vec![]).rate_at_offset(0);
    }

    #[test]
    fn encode_decode_roundtrips() {
        for rate in [RateProfile::Constant(812.5), RateProfile::PerSlot(vec![100.0, 250.25, 300.0])]
        {
            let mut r = req();
            r.rate = rate;
            let mut w = sb_wire::Writer::new();
            r.encode(&mut w);
            let bytes = w.into_bytes();
            let mut reader = sb_wire::Reader::new(&bytes);
            let back = Request::decode(&mut reader).unwrap();
            assert!(reader.is_exhausted());
            assert_eq!(back, r);
            // Truncations error, never panic.
            for cut in 0..bytes.len() {
                let mut reader = sb_wire::Reader::new(&bytes[..cut]);
                assert!(Request::decode(&mut reader).is_err(), "cut at {cut}");
            }
        }
        // An unknown rate-profile tag is rejected.
        let mut w = sb_wire::Writer::new();
        req().encode(&mut w);
        let mut bytes = w.into_bytes();
        bytes[12] = 7; // the tag byte follows id/source/destination
        let mut reader = sb_wire::Reader::new(&bytes);
        assert!(matches!(
            Request::decode(&mut reader),
            Err(sb_wire::WireError::BadTag { tag: 7, .. })
        ));
    }
}
