//! Minimal deterministic binary encoding for durability artifacts.
//!
//! The checkpoint and journal formats (crash recovery for long-running
//! sweeps) need a serialization layer that is
//!
//! * **bit-exact** — `f64` round-trips through [`Writer::f64`] /
//!   [`Reader::f64`] via `to_bits`/`from_bits`, so a restored
//!   `NetworkState` is indistinguishable from the original;
//! * **self-checking** — [`checksum`] (FNV-1a 64) lets framers detect
//!   torn writes and bit rot without trusting the payload;
//! * **dependency-free** — it must work identically in offline stub
//!   builds and networked CI, so it cannot lean on serde.
//!
//! Everything is little-endian and length-prefixed. Decoding never
//! panics: every [`Reader`] method returns a [`WireError`] on truncated
//! or malformed input, which the journal layer converts into "discard the
//! torn tail" and the checkpoint layer into "skip this snapshot".
//!
//! The format is deliberately dumb — no schema evolution, no varints.
//! Versioning happens one layer up (the checkpoint/journal headers carry
//! an explicit format version and reject unknown ones).

#![warn(missing_docs)]

/// Decoding failure: the buffer did not contain what the caller asked for.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// The buffer ended before the requested value.
    Truncated {
        /// Bytes the read needed.
        needed: usize,
        /// Bytes actually remaining.
        remaining: usize,
    },
    /// An enum tag byte had no defined meaning.
    BadTag {
        /// The offending tag value.
        tag: u8,
        /// What was being decoded.
        context: &'static str,
    },
    /// A length prefix or field value failed a sanity bound.
    Invalid {
        /// What was wrong.
        detail: String,
    },
    /// A UTF-8 string field held invalid UTF-8.
    BadUtf8,
}

impl core::fmt::Display for WireError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            WireError::Truncated { needed, remaining } => {
                write!(f, "truncated input: needed {needed} bytes, {remaining} remaining")
            }
            WireError::BadTag { tag, context } => write!(f, "unknown tag {tag} decoding {context}"),
            WireError::Invalid { detail } => write!(f, "invalid field: {detail}"),
            WireError::BadUtf8 => write!(f, "invalid UTF-8 in string field"),
        }
    }
}

impl std::error::Error for WireError {}

/// FNV-1a 64-bit checksum of a byte slice.
///
/// Not cryptographic — it guards against torn writes and accidental
/// corruption, the failure modes of a crashed process, not an adversary.
pub fn checksum(bytes: &[u8]) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(PRIME);
    }
    h
}

/// Length + checksum framing shared by every durability artifact that is
/// a *sequence* of self-checking payloads: the admission journal, the
/// `sb-serve` WAL, and the service's request/ack frame logs.
///
/// One frame is `len: u32 | checksum: u64 | payload (len bytes)`, all
/// little-endian. The reader never panics and never allocates: a torn or
/// corrupt head is reported as a status, so file scanners can treat it as
/// the start of the torn tail and stream decoders as "wait for more
/// bytes".
pub mod frame {
    use super::checksum;

    /// Bytes of framing overhead per frame (`len: u32` + `checksum: u64`).
    pub const HEADER_BYTES: usize = 12;

    /// Appends one frame (`len | checksum | payload`) to `out`.
    pub fn write_frame(out: &mut Vec<u8>, payload: &[u8]) {
        out.reserve(HEADER_BYTES + payload.len());
        out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        out.extend_from_slice(&checksum(payload).to_le_bytes());
        out.extend_from_slice(payload);
    }

    /// Outcome of reading one frame from the head of a buffer.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub enum FrameStatus<'a> {
        /// A complete frame whose checksum verified.
        Complete {
            /// The frame's payload bytes (borrowed from the input).
            payload: &'a [u8],
            /// Total bytes consumed, header included.
            consumed: usize,
        },
        /// Not enough bytes for a whole frame: more input is needed
        /// (stream case) or this is a torn tail (file case).
        Incomplete,
        /// The header or payload is inconsistent — a length prefix beyond
        /// `max_payload` or a checksum mismatch. File scanners treat this
        /// exactly like [`FrameStatus::Incomplete`] (stop and discard);
        /// stream decoders must drop the connection, since resynchronizing
        /// inside a corrupt stream is guesswork.
        Corrupt,
    }

    /// Reads one frame from the head of `buf` without copying.
    pub fn read_frame(buf: &[u8], max_payload: u32) -> FrameStatus<'_> {
        let Some((len_bytes, rest)) = buf.split_first_chunk::<4>() else {
            return FrameStatus::Incomplete;
        };
        let Some((sum_bytes, rest)) = rest.split_first_chunk::<8>() else {
            return FrameStatus::Incomplete;
        };
        let len = u32::from_le_bytes(*len_bytes);
        if len > max_payload {
            return FrameStatus::Corrupt;
        }
        let len = len as usize;
        if rest.len() < len {
            return FrameStatus::Incomplete;
        }
        let payload = &rest[..len];
        if checksum(payload) != u64::from_le_bytes(*sum_bytes) {
            return FrameStatus::Corrupt;
        }
        FrameStatus::Complete { payload, consumed: HEADER_BYTES + len }
    }
}

/// Append-only encoder over a growable byte buffer.
#[derive(Debug, Default, Clone)]
pub struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    /// An empty writer.
    pub fn new() -> Self {
        Writer::default()
    }

    /// Consumes the writer, returning the encoded bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Writes one byte.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Writes a bool as one byte (0/1).
    pub fn bool(&mut self, v: bool) {
        self.buf.push(u8::from(v));
    }

    /// Writes a `u32`, little-endian.
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a `u64`, little-endian.
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a `usize` as a `u64` (checked nowhere: usize ≤ u64 on all
    /// supported targets).
    pub fn usize(&mut self, v: usize) {
        self.u64(v as u64);
    }

    /// Writes an `f64` bit-exactly.
    pub fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }

    /// Writes a length-prefixed UTF-8 string.
    pub fn str(&mut self, v: &str) {
        self.usize(v.len());
        self.buf.extend_from_slice(v.as_bytes());
    }

    /// Writes raw bytes without a length prefix (caller frames them).
    pub fn raw(&mut self, v: &[u8]) {
        self.buf.extend_from_slice(v);
    }

    /// Writes a length-prefixed byte blob.
    pub fn bytes(&mut self, v: &[u8]) {
        self.usize(v.len());
        self.buf.extend_from_slice(v);
    }

    /// Writes a length prefix followed by per-element encoding.
    pub fn seq<T>(&mut self, items: &[T], mut each: impl FnMut(&mut Writer, &T)) {
        self.usize(items.len());
        for item in items {
            each(self, item);
        }
    }
}

/// Sequential decoder over a byte slice.
#[derive(Debug, Clone)]
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// A reader starting at the beginning of `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Whether the whole buffer was consumed.
    pub fn is_exhausted(&self) -> bool {
        self.remaining() == 0
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        if self.remaining() < n {
            return Err(WireError::Truncated { needed: n, remaining: self.remaining() });
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Reads one byte.
    pub fn u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a bool; any byte other than 0/1 is malformed.
    pub fn bool(&mut self) -> Result<bool, WireError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            tag => Err(WireError::BadTag { tag, context: "bool" }),
        }
    }

    /// Reads a little-endian `u32`.
    pub fn u32(&mut self) -> Result<u32, WireError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Reads a little-endian `u64`.
    pub fn u64(&mut self) -> Result<u64, WireError> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes([b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7]]))
    }

    /// Reads a `usize` written by [`Writer::usize`], rejecting values that
    /// do not fit the platform's pointer width.
    pub fn usize(&mut self) -> Result<usize, WireError> {
        let v = self.u64()?;
        usize::try_from(v)
            .map_err(|_| WireError::Invalid { detail: format!("usize out of range: {v}") })
    }

    /// Reads a length prefix meant to size an allocation, bounding it by
    /// what the buffer could possibly still hold (`element_size ≥ 1`
    /// bytes each) so corrupt prefixes cannot trigger huge allocations.
    pub fn seq_len(&mut self, element_size: usize) -> Result<usize, WireError> {
        let n = self.usize()?;
        let bound = self.remaining() / element_size.max(1);
        if n > bound {
            return Err(WireError::Invalid {
                detail: format!("sequence length {n} exceeds remaining input ({bound} max)"),
            });
        }
        Ok(n)
    }

    /// Reads an `f64` bit-exactly.
    pub fn f64(&mut self) -> Result<f64, WireError> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// Reads a length-prefixed UTF-8 string.
    pub fn str(&mut self) -> Result<String, WireError> {
        let n = self.seq_len(1)?;
        let bytes = self.take(n)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| WireError::BadUtf8)
    }

    /// Reads a length-prefixed byte blob. The length is bounded by the
    /// remaining input, so a corrupt prefix cannot trigger a huge
    /// allocation.
    pub fn bytes(&mut self) -> Result<Vec<u8>, WireError> {
        let n = self.seq_len(1)?;
        Ok(self.take(n)?.to_vec())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_primitives() {
        let mut w = Writer::new();
        w.u8(7);
        w.bool(true);
        w.bool(false);
        w.u32(0xdead_beef);
        w.u64(u64::MAX);
        w.usize(42);
        w.f64(-0.0);
        w.f64(f64::NAN);
        w.str("hëllo");
        w.bytes(&[0xde, 0xad, 0x00]);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        assert_eq!(r.u8().unwrap(), 7);
        assert!(r.bool().unwrap());
        assert!(!r.bool().unwrap());
        assert_eq!(r.u32().unwrap(), 0xdead_beef);
        assert_eq!(r.u64().unwrap(), u64::MAX);
        assert_eq!(r.usize().unwrap(), 42);
        assert_eq!(r.f64().unwrap().to_bits(), (-0.0f64).to_bits());
        assert!(r.f64().unwrap().is_nan());
        assert_eq!(r.str().unwrap(), "hëllo");
        assert_eq!(r.bytes().unwrap(), vec![0xde, 0xad, 0x00]);
        assert!(r.is_exhausted());
    }

    #[test]
    fn seq_roundtrip() {
        let mut w = Writer::new();
        w.seq(&[1.5f64, -2.5, 3.25], |w, v| w.f64(*v));
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        let n = r.seq_len(8).unwrap();
        let vs: Vec<f64> = (0..n).map(|_| r.f64().unwrap()).collect();
        assert_eq!(vs, vec![1.5, -2.5, 3.25]);
    }

    #[test]
    fn truncation_is_an_error_not_a_panic() {
        let mut w = Writer::new();
        w.u64(12345);
        let bytes = w.into_bytes();
        for cut in 0..bytes.len() {
            let mut r = Reader::new(&bytes[..cut]);
            assert!(matches!(r.u64(), Err(WireError::Truncated { .. })), "cut at {cut}");
        }
    }

    #[test]
    fn bogus_length_prefix_rejected() {
        let mut w = Writer::new();
        w.usize(usize::MAX / 2);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        assert!(matches!(r.seq_len(8), Err(WireError::Invalid { .. })));
        let mut r = Reader::new(&bytes);
        assert!(matches!(r.str(), Err(WireError::Invalid { .. })));
    }

    #[test]
    fn bad_bool_tag_rejected() {
        let mut r = Reader::new(&[9]);
        assert_eq!(r.bool(), Err(WireError::BadTag { tag: 9, context: "bool" }));
    }

    #[test]
    fn checksum_detects_any_single_bit_flip() {
        let data = b"space booking durability layer";
        let base = checksum(data);
        let mut copy = data.to_vec();
        for byte in 0..copy.len() {
            for bit in 0..8 {
                copy[byte] ^= 1 << bit;
                assert_ne!(checksum(&copy), base, "flip at {byte}:{bit} undetected");
                copy[byte] ^= 1 << bit;
            }
        }
        assert_eq!(checksum(&copy), base);
    }

    #[test]
    fn checksum_known_vectors() {
        // FNV-1a 64 reference values.
        assert_eq!(checksum(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(checksum(b"a"), 0xaf63_dc4c_8601_ec8c);
    }

    #[test]
    fn frame_roundtrip_and_truncation() {
        use frame::{read_frame, write_frame, FrameStatus};
        let mut buf = Vec::new();
        write_frame(&mut buf, b"first");
        write_frame(&mut buf, b"");
        write_frame(&mut buf, b"third payload");
        let mut pos = 0;
        let mut payloads = Vec::new();
        while let FrameStatus::Complete { payload, consumed } = read_frame(&buf[pos..], 1 << 20) {
            payloads.push(payload.to_vec());
            pos += consumed;
        }
        assert_eq!(payloads, vec![b"first".to_vec(), b"".to_vec(), b"third payload".to_vec()]);
        assert_eq!(pos, buf.len());
        // Every truncation of a frame stream reads as Incomplete at the
        // cut, never as a bogus frame and never as a panic.
        for cut in 0..buf.len() {
            let mut pos = 0;
            loop {
                match read_frame(&buf[pos..cut], 1 << 20) {
                    FrameStatus::Complete { consumed, .. } => pos += consumed,
                    FrameStatus::Incomplete => break,
                    FrameStatus::Corrupt => panic!("truncation at {cut} read as corrupt"),
                }
            }
        }
    }

    #[test]
    fn frame_corruption_detected() {
        use frame::{read_frame, write_frame, FrameStatus};
        let mut buf = Vec::new();
        write_frame(&mut buf, b"payload under test");
        // Oversized length prefix.
        let mut big = buf.clone();
        big[..4].copy_from_slice(&u32::MAX.to_le_bytes());
        assert_eq!(read_frame(&big, 1 << 20), FrameStatus::Corrupt);
        // Any flipped payload bit fails the checksum.
        for byte in frame::HEADER_BYTES..buf.len() {
            let mut copy = buf.clone();
            copy[byte] ^= 0x10;
            assert_eq!(read_frame(&copy, 1 << 20), FrameStatus::Corrupt, "flip at {byte}");
        }
    }

    #[test]
    fn error_display() {
        let e = WireError::Truncated { needed: 8, remaining: 3 };
        assert!(format!("{e}").contains("needed 8"));
        let b = WireError::BadTag { tag: 4, context: "policy" };
        assert!(format!("{b}").contains("policy"));
    }
}
