//! The coordinator's scheduling brain, as a pure state machine.
//!
//! Everything time-dependent — heartbeat deadlines, the slow-vs-dead
//! hysteresis, retry backoff — takes an explicit `now_ms` timestamp
//! instead of reading a clock, so unit tests drive every transition with
//! a fake clock and zero sleeps. The I/O shell
//! ([`crate::coordinator`]) feeds it three kinds of input — worker
//! messages, worker deaths, and clock ticks — and executes the
//! [`Action`]s it returns (dispatch a job, SIGKILL a worker).
//!
//! # Liveness: slow vs dead
//!
//! A worker with a job heartbeats at every slot boundary. Silence is
//! judged in two stages with hysteresis between them:
//!
//! * past `soft_timeout_ms` the worker is **suspect** — recorded (and
//!   counted) but not touched, because a paper-scale topology build or a
//!   pathological cell legitimately goes quiet for a while;
//! * a single fresh heartbeat fully rehabilitates a suspect — the next
//!   silence is measured from that heartbeat, not from old suspicion, so
//!   a worker oscillating around the soft deadline is never escalated;
//! * only silence past `hard_timeout_ms` declares the worker **dead**:
//!   the shell SIGKILLs and respawns it, and the cell goes back to the
//!   queue with a retry debit.
//!
//! # Retry, backoff, quarantine
//!
//! A cell whose worker died (or that reported failure) is retried with
//! decorrelated-jitter backoff (deterministically seeded — the whole
//! machine is reproducible). A cell that fails [`SchedConfig::max_attempts`]
//! times is **quarantined**: recorded as failed with its last stderr tail
//! and never dispatched again, so one poison cell cannot kill workers
//! forever. Quarantine fails the sweep (nonzero exit) but does not stop
//! the other cells from finishing first.
//!
//! # Affinity (opt-in)
//!
//! [`Scheduler::set_affinity`] tags every cell with a key — in the fleet,
//! the `(prepare_digest, seed)` series identity — and dispatch then
//! prefers a pending cell whose key the idle worker has already run,
//! because that worker still holds the materialized series in its cache.
//! Held keys are process memory: a worker's set is cleared when it dies
//! or is replaced. Affinity only reorders *which* worker runs a cell,
//! never whether or how it runs, so results stay byte-identical; without
//! keys the scheduler behaves exactly as before.

/// Tuning knobs for the scheduler. All in milliseconds of the caller's
/// clock (wall time in production, a counter in tests).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SchedConfig {
    /// Heartbeat silence after which a worker is suspect (recorded, not
    /// killed).
    pub soft_timeout_ms: u64,
    /// Heartbeat silence after which a worker is declared dead and
    /// SIGKILLed. Must exceed `soft_timeout_ms`.
    pub hard_timeout_ms: u64,
    /// Attempts (first run + retries) before a cell is quarantined.
    pub max_attempts: u32,
    /// Decorrelated-jitter backoff: base delay before a cell's first
    /// retry.
    pub backoff_base_ms: u64,
    /// Decorrelated-jitter backoff: delay ceiling.
    pub backoff_cap_ms: u64,
    /// Seed for the (deterministic) backoff jitter.
    pub backoff_seed: u64,
}

impl Default for SchedConfig {
    fn default() -> Self {
        SchedConfig {
            soft_timeout_ms: 5_000,
            hard_timeout_ms: 30_000,
            max_attempts: 3,
            backoff_base_ms: 50,
            backoff_cap_ms: 2_000,
            backoff_seed: 0x5b_f1ee7,
        }
    }
}

/// What the shell must do next.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Action {
    /// Send this cell to this worker's stdin.
    Dispatch {
        /// The worker slot to dispatch to.
        worker: usize,
        /// The cell index to run.
        cell: usize,
        /// Which attempt this is (0-based) — chaos scripting keys on it.
        attempt: u32,
    },
    /// SIGKILL this worker (it is dead by heartbeat deadline); the shell
    /// respawns into the same slot and calls
    /// [`Scheduler::on_worker_ready`] when the replacement greets.
    KillWorker {
        /// The worker slot to kill.
        worker: usize,
    },
}

/// Where one cell stands.
#[derive(Debug, Clone, PartialEq)]
pub enum CellStatus {
    /// Waiting for a worker (and, after a failure, for its backoff
    /// deadline).
    Pending,
    /// Running on this worker slot.
    Running(usize),
    /// Finished and durably recorded.
    Done,
    /// Failed [`SchedConfig::max_attempts`] times; never retried again.
    Quarantined,
}

/// A quarantined cell, for the failure report.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QuarantinedCell {
    /// The cell index.
    pub cell: usize,
    /// Attempts consumed.
    pub attempts: u32,
    /// The last failure: what the worker reported, or the tail of the
    /// dead worker's stderr.
    pub detail: String,
}

#[derive(Debug)]
struct CellSlot {
    status: CellStatus,
    attempts: u32,
    eligible_at_ms: u64,
    /// Previous backoff delay (decorrelated jitter feeds on it).
    prev_backoff_ms: u64,
    last_error: String,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum WorkerHealth {
    /// Greeted and heartbeating on time.
    Healthy,
    /// Past the soft deadline; watched, not killed.
    Suspect,
}

#[derive(Debug)]
struct WorkerSlot {
    /// Greeted and usable. False between a kill and the replacement's
    /// `Ready`.
    alive: bool,
    job: Option<usize>,
    last_beat_ms: u64,
    health: WorkerHealth,
    /// Kill already ordered; await the shell's respawn + `Ready` before
    /// touching this slot again (prevents double-kill actions).
    kill_pending: bool,
    /// Affinity keys of cells this worker process has run — the series it
    /// plausibly still holds in memory. Cleared on death/replacement.
    held: Vec<u64>,
}

/// The scheduler. See the module docs for the model.
#[derive(Debug)]
pub struct Scheduler {
    cfg: SchedConfig,
    cells: Vec<CellSlot>,
    workers: Vec<WorkerSlot>,
    done: usize,
    suspect_transitions: u64,
    backoff_rng: u64,
    /// Per-cell affinity keys; empty = affinity off (vanilla dispatch).
    affinity: Vec<u64>,
    affinity_hits: u64,
    affinity_misses: u64,
}

impl Scheduler {
    /// A scheduler over `n_cells` cells and `n_workers` worker slots.
    /// Workers start not-alive; the shell calls
    /// [`Scheduler::on_worker_ready`] as their greetings arrive.
    ///
    /// # Panics
    ///
    /// Panics if `hard_timeout_ms <= soft_timeout_ms` or
    /// `max_attempts == 0` — misconfigurations that would make liveness
    /// judgments or retries meaningless.
    pub fn new(n_cells: usize, n_workers: usize, cfg: SchedConfig) -> Self {
        assert!(
            cfg.hard_timeout_ms > cfg.soft_timeout_ms,
            "hard timeout ({}) must exceed soft timeout ({})",
            cfg.hard_timeout_ms,
            cfg.soft_timeout_ms
        );
        assert!(cfg.max_attempts >= 1, "max_attempts must be >= 1");
        Scheduler {
            cfg,
            cells: (0..n_cells)
                .map(|_| CellSlot {
                    status: CellStatus::Pending,
                    attempts: 0,
                    eligible_at_ms: 0,
                    prev_backoff_ms: 0,
                    last_error: String::new(),
                })
                .collect(),
            workers: (0..n_workers)
                .map(|_| WorkerSlot {
                    alive: false,
                    job: None,
                    last_beat_ms: 0,
                    health: WorkerHealth::Healthy,
                    kill_pending: false,
                    held: Vec::new(),
                })
                .collect(),
            done: 0,
            suspect_transitions: 0,
            backoff_rng: cfg.backoff_seed,
            affinity: Vec::new(),
            affinity_hits: 0,
            affinity_misses: 0,
        }
    }

    /// Enables affinity routing: `keys[cell]` identifies the prepared
    /// series the cell needs, and dispatch prefers workers that already
    /// ran that key. See the module docs.
    ///
    /// # Panics
    ///
    /// Panics if `keys` does not name every cell.
    pub fn set_affinity(&mut self, keys: Vec<u64>) {
        assert_eq!(keys.len(), self.cells.len(), "one affinity key per cell");
        self.affinity = keys;
    }

    /// Dispatches answered by a worker already holding the cell's series
    /// vs not, since [`Scheduler::set_affinity`]. `(0, 0)` when affinity
    /// is off.
    pub fn affinity_stats(&self) -> (u64, u64) {
        (self.affinity_hits, self.affinity_misses)
    }

    /// Marks a cell complete before scheduling starts — used by resume to
    /// skip cells whose durable results already exist on disk.
    ///
    /// # Panics
    ///
    /// Panics if the cell already ran (resume marking happens first).
    pub fn mark_done_upfront(&mut self, cell: usize) {
        assert_eq!(self.cells[cell].status, CellStatus::Pending, "cell {cell} already scheduled");
        self.cells[cell].status = CellStatus::Done;
        self.done += 1;
    }

    /// A worker greeted (first spawn or post-kill respawn). The slot
    /// becomes dispatchable.
    pub fn on_worker_ready(&mut self, worker: usize, now_ms: u64) {
        let w = &mut self.workers[worker];
        w.alive = true;
        w.job = None;
        w.last_beat_ms = now_ms;
        w.health = WorkerHealth::Healthy;
        w.kill_pending = false;
        // A fresh process holds nothing, whatever its predecessor ran.
        w.held.clear();
    }

    /// A heartbeat arrived. Fully rehabilitates a suspect worker: the
    /// next silence window starts here.
    pub fn on_heartbeat(&mut self, worker: usize, now_ms: u64) {
        let w = &mut self.workers[worker];
        if !w.alive {
            return; // stale beat from a generation already killed
        }
        w.last_beat_ms = now_ms;
        w.health = WorkerHealth::Healthy;
    }

    /// The worker finished its cell. Returns `true` if this `(worker,
    /// job)` pairing was current — a stale `Done` from a superseded
    /// attempt returns `false` and must not be recorded.
    pub fn on_done(&mut self, worker: usize, cell: usize, now_ms: u64) -> bool {
        let current = self.workers.get(worker).is_some_and(|w| w.alive && w.job == Some(cell))
            && self.cells[cell].status == CellStatus::Running(worker);
        if !current {
            return false;
        }
        self.workers[worker].job = None;
        self.workers[worker].last_beat_ms = now_ms;
        self.cells[cell].status = CellStatus::Done;
        self.done += 1;
        true
    }

    /// The worker reported an in-process failure for its cell (it
    /// survives and can take new work). The cell is debited an attempt.
    pub fn on_failed(&mut self, worker: usize, cell: usize, detail: &str, now_ms: u64) {
        let current = self.workers.get(worker).is_some_and(|w| w.alive && w.job == Some(cell))
            && self.cells[cell].status == CellStatus::Running(worker);
        if !current {
            return;
        }
        self.workers[worker].job = None;
        self.workers[worker].last_beat_ms = now_ms;
        self.retry_or_quarantine(cell, detail, now_ms);
    }

    /// The worker process died (EOF on its pipe, or reaped). Any in-flight
    /// cell is debited an attempt with `stderr_tail` as the evidence. The
    /// slot is unusable until the shell respawns and the replacement
    /// greets.
    pub fn on_worker_dead(&mut self, worker: usize, stderr_tail: &str, now_ms: u64) {
        let w = &mut self.workers[worker];
        w.alive = false;
        w.kill_pending = false;
        w.held.clear();
        if let Some(cell) = w.job.take() {
            if self.cells[cell].status == CellStatus::Running(worker) {
                self.retry_or_quarantine(cell, stderr_tail, now_ms);
            }
        }
    }

    fn retry_or_quarantine(&mut self, cell: usize, detail: &str, now_ms: u64) {
        let c = &mut self.cells[cell];
        c.attempts += 1;
        c.last_error = detail.to_owned();
        if c.attempts >= self.cfg.max_attempts {
            c.status = CellStatus::Quarantined;
            return;
        }
        // Decorrelated jitter: next = min(cap, uniform(base, prev * 3)),
        // from a deterministic splitmix64 stream.
        let base = self.cfg.backoff_base_ms;
        let prev = c.prev_backoff_ms.max(base);
        let span = (prev * 3).saturating_sub(base).max(1);
        let delay = (base + splitmix64(&mut self.backoff_rng) % span).min(self.cfg.backoff_cap_ms);
        c.prev_backoff_ms = delay;
        c.eligible_at_ms = now_ms + delay;
        c.status = CellStatus::Pending;
    }

    /// Advances liveness judgments to `now_ms` and dispatches eligible
    /// pending cells onto idle workers. Call on every shell wakeup.
    pub fn tick(&mut self, now_ms: u64) -> Vec<Action> {
        let mut actions = Vec::new();
        // Liveness first: a dead worker's cell re-enters the pending pool
        // in this same tick only after its backoff.
        for (i, w) in self.workers.iter_mut().enumerate() {
            if !w.alive || w.kill_pending || w.job.is_none() {
                continue;
            }
            let silent = now_ms.saturating_sub(w.last_beat_ms);
            if silent >= self.cfg.hard_timeout_ms {
                w.kill_pending = true;
                actions.push(Action::KillWorker { worker: i });
            } else if silent >= self.cfg.soft_timeout_ms && w.health == WorkerHealth::Healthy {
                w.health = WorkerHealth::Suspect;
                self.suspect_transitions += 1;
            }
        }
        // Dispatch: lowest cell index first, onto the lowest idle worker —
        // except that with affinity keys set, an idle worker first looks
        // for the lowest pending cell whose series it already holds.
        for (wi, w) in self.workers.iter_mut().enumerate() {
            if !w.alive || w.kill_pending || w.job.is_some() {
                continue;
            }
            let eligible =
                |c: &CellSlot| c.status == CellStatus::Pending && c.eligible_at_ms <= now_ms;
            let preferred = (!self.affinity.is_empty())
                .then(|| {
                    self.cells
                        .iter()
                        .enumerate()
                        .position(|(i, c)| eligible(c) && w.held.contains(&self.affinity[i]))
                })
                .flatten();
            let next = preferred.or_else(|| self.cells.iter().position(eligible));
            if let Some(ci) = next {
                if !self.affinity.is_empty() {
                    if preferred.is_some() {
                        self.affinity_hits += 1;
                    } else {
                        self.affinity_misses += 1;
                        w.held.push(self.affinity[ci]);
                    }
                }
                self.cells[ci].status = CellStatus::Running(wi);
                w.job = Some(ci);
                w.last_beat_ms = now_ms; // deadline restarts at dispatch
                w.health = WorkerHealth::Healthy;
                actions.push(Action::Dispatch {
                    worker: wi,
                    cell: ci,
                    attempt: self.cells[ci].attempts,
                });
            }
        }
        actions
    }

    /// The earliest future instant at which [`Scheduler::tick`] could act
    /// (a liveness deadline or a backoff expiry) — the shell sleeps until
    /// then (or an event). `None` when nothing is pending or running.
    pub fn next_deadline(&self, now_ms: u64) -> Option<u64> {
        let mut next: Option<u64> = None;
        let mut fold = |t: u64| next = Some(next.map_or(t, |n: u64| n.min(t)));
        for w in &self.workers {
            if w.alive && !w.kill_pending && w.job.is_some() {
                let silent = now_ms.saturating_sub(w.last_beat_ms);
                if silent < self.cfg.hard_timeout_ms {
                    fold(w.last_beat_ms + self.cfg.hard_timeout_ms);
                } else {
                    fold(now_ms); // already past due; tick immediately
                }
                if silent < self.cfg.soft_timeout_ms {
                    fold(w.last_beat_ms + self.cfg.soft_timeout_ms);
                }
            }
        }
        for c in &self.cells {
            if c.status == CellStatus::Pending && c.eligible_at_ms > now_ms {
                fold(c.eligible_at_ms);
            }
        }
        next
    }

    /// Whether every cell is done or quarantined.
    pub fn is_complete(&self) -> bool {
        self.cells.iter().all(|c| matches!(c.status, CellStatus::Done | CellStatus::Quarantined))
    }

    /// Cells finished so far.
    pub fn done_count(&self) -> usize {
        self.done
    }

    /// One cell's status.
    pub fn cell_status(&self, cell: usize) -> &CellStatus {
        &self.cells[cell].status
    }

    /// The quarantine report, in cell order. Empty means the sweep is
    /// clean.
    pub fn quarantined(&self) -> Vec<QuarantinedCell> {
        self.cells
            .iter()
            .enumerate()
            .filter(|(_, c)| c.status == CellStatus::Quarantined)
            .map(|(i, c)| QuarantinedCell {
                cell: i,
                attempts: c.attempts,
                detail: c.last_error.clone(),
            })
            .collect()
    }

    /// How many healthy→suspect transitions liveness recorded (the
    /// "slow worker" counter; killing requires the hard deadline).
    pub fn suspect_transitions(&self) -> u64 {
        self.suspect_transitions
    }

    /// Whether there is any live worker slot (greeted and not being
    /// killed). When spawning fails everywhere the coordinator degrades
    /// to in-process execution.
    pub fn any_worker_alive(&self) -> bool {
        self.workers.iter().any(|w| w.alive && !w.kill_pending)
    }
}

/// SplitMix64 — the workspace's standard tiny deterministic stream.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> SchedConfig {
        SchedConfig {
            soft_timeout_ms: 100,
            hard_timeout_ms: 300,
            max_attempts: 3,
            backoff_base_ms: 10,
            backoff_cap_ms: 80,
            backoff_seed: 42,
        }
    }

    fn dispatches(actions: &[Action]) -> Vec<(usize, usize)> {
        actions
            .iter()
            .filter_map(|a| match a {
                Action::Dispatch { worker, cell, .. } => Some((*worker, *cell)),
                _ => None,
            })
            .collect()
    }

    fn kills(actions: &[Action]) -> Vec<usize> {
        actions
            .iter()
            .filter_map(|a| match a {
                Action::KillWorker { worker } => Some(*worker),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn dispatches_cells_in_order_to_ready_workers() {
        let mut s = Scheduler::new(3, 2, cfg());
        assert!(s.tick(0).is_empty(), "no greeted workers yet");
        s.on_worker_ready(0, 0);
        s.on_worker_ready(1, 0);
        let a = s.tick(0);
        assert_eq!(dispatches(&a), vec![(0, 0), (1, 1)]);
        assert!(s.tick(1).is_empty(), "both workers busy");
        assert!(s.on_done(0, 0, 10));
        let a = s.tick(10);
        assert_eq!(dispatches(&a), vec![(0, 2)]);
        assert!(s.on_done(1, 1, 20));
        assert!(s.on_done(0, 2, 30));
        assert!(s.is_complete());
        assert!(s.quarantined().is_empty());
    }

    #[test]
    fn silent_worker_becomes_suspect_then_dead() {
        let mut s = Scheduler::new(1, 1, cfg());
        s.on_worker_ready(0, 0);
        s.tick(0);
        // Before the soft deadline: healthy, nothing happens.
        assert!(s.tick(99).is_empty());
        assert_eq!(s.suspect_transitions(), 0);
        // Past soft: suspect, counted, NOT killed.
        assert!(s.tick(100).is_empty());
        assert_eq!(s.suspect_transitions(), 1);
        // Still suspect, still not killed, not double-counted.
        assert!(s.tick(299).is_empty());
        assert_eq!(s.suspect_transitions(), 1);
        // Past hard: killed, exactly once.
        assert_eq!(kills(&s.tick(300)), vec![0]);
        assert!(s.tick(301).is_empty(), "kill is not re-issued while pending");
    }

    #[test]
    fn heartbeat_rehabilitates_suspect_worker_hysteresis() {
        // A slow worker that beats at 1.5× the soft deadline flaps
        // suspect→healthy forever but is never killed: the hard deadline
        // is measured from the latest heartbeat, not from suspicion.
        let mut s = Scheduler::new(1, 1, cfg());
        s.on_worker_ready(0, 0);
        s.tick(0);
        let mut now = 0;
        for _ in 0..10 {
            now += 150; // soft=100 < 150 < hard=300
            assert!(s.tick(now).is_empty(), "no kill at t={now}");
            s.on_heartbeat(0, now);
        }
        assert_eq!(s.suspect_transitions(), 10, "each lapse recorded");
        // And the cell is still running — never re-queued.
        assert_eq!(*s.cell_status(0), CellStatus::Running(0));
    }

    #[test]
    fn dead_worker_requeues_cell_with_backoff() {
        let mut s = Scheduler::new(1, 2, cfg());
        s.on_worker_ready(0, 0);
        s.on_worker_ready(1, 0);
        s.tick(0);
        assert_eq!(*s.cell_status(0), CellStatus::Running(0));
        s.on_worker_dead(0, "killed by signal 9", 50);
        assert_eq!(*s.cell_status(0), CellStatus::Pending);
        // Worker 1 is idle but the cell is under backoff: nothing at t=50.
        assert!(dispatches(&s.tick(50)).is_empty(), "backoff must delay the retry");
        // Backoff is bounded by the cap; at t=50+cap it must dispatch —
        // to worker 1 (worker 0's slot is dead until respawn+ready).
        let a = s.tick(50 + 80);
        assert_eq!(dispatches(&a), vec![(1, 0)]);
        match &a[0] {
            Action::Dispatch { attempt, .. } => assert_eq!(*attempt, 1),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn poison_cell_quarantines_after_max_attempts() {
        let mut s = Scheduler::new(2, 1, cfg());
        s.on_worker_ready(0, 0);
        let mut now = 0;
        for attempt in 0..3 {
            let a = s.tick(now);
            assert_eq!(dispatches(&a), vec![(0, 0)], "attempt {attempt}");
            now += 10;
            s.on_worker_dead(0, &format!("boom {attempt}"), now);
            s.on_worker_ready(0, now); // shell respawns
            now += 100; // past any backoff
        }
        assert_eq!(*s.cell_status(0), CellStatus::Quarantined);
        let q = s.quarantined();
        assert_eq!(q.len(), 1);
        assert_eq!(q[0].cell, 0);
        assert_eq!(q[0].attempts, 3);
        assert_eq!(q[0].detail, "boom 2", "report carries the last stderr tail");
        // The healthy cell still runs and completes; quarantine does not
        // wedge the sweep.
        let a = s.tick(now);
        assert_eq!(dispatches(&a), vec![(0, 1)]);
        assert!(s.on_done(0, 1, now + 5));
        assert!(s.is_complete());
    }

    #[test]
    fn worker_reported_failure_debits_attempt_without_killing() {
        let mut s = Scheduler::new(1, 1, cfg());
        s.on_worker_ready(0, 0);
        s.tick(0);
        s.on_failed(0, 0, "durable write failed", 10);
        assert_eq!(*s.cell_status(0), CellStatus::Pending);
        assert!(s.any_worker_alive(), "an in-worker failure keeps the process");
        // Retried on the same worker after backoff.
        let a = s.tick(10 + 80);
        assert_eq!(dispatches(&a), vec![(0, 0)]);
    }

    #[test]
    fn stale_done_from_superseded_attempt_is_ignored() {
        let mut s = Scheduler::new(1, 2, cfg());
        s.on_worker_ready(0, 0);
        s.on_worker_ready(1, 0);
        s.tick(0);
        // Worker 0 goes silent past hard; its cell is re-dispatched to 1.
        let a = s.tick(300);
        assert_eq!(kills(&a), vec![0]);
        s.on_worker_dead(0, "", 300);
        let a = s.tick(300 + 80);
        assert_eq!(dispatches(&a), vec![(1, 0)]);
        // A Done from the dead slot must be ignored.
        assert!(!s.on_done(0, 0, 400), "stale done accepted");
        assert_eq!(*s.cell_status(0), CellStatus::Running(1));
        // The live attempt's Done still lands.
        assert!(s.on_done(1, 0, 410));
        assert!(s.is_complete());
    }

    #[test]
    fn backoff_is_deterministic_and_bounded() {
        let delays: Vec<u64> = {
            let mut s = Scheduler::new(1, 1, cfg());
            s.on_worker_ready(0, 0);
            let mut out = Vec::new();
            let mut now = 0;
            for _ in 0..2 {
                s.tick(now);
                s.on_worker_dead(0, "x", now);
                out.push(s.cells[0].eligible_at_ms - now);
                s.on_worker_ready(0, now);
                now += 1000;
            }
            out
        };
        let again: Vec<u64> = {
            let mut s = Scheduler::new(1, 1, cfg());
            s.on_worker_ready(0, 0);
            let mut out = Vec::new();
            let mut now = 0;
            for _ in 0..2 {
                s.tick(now);
                s.on_worker_dead(0, "x", now);
                out.push(s.cells[0].eligible_at_ms - now);
                s.on_worker_ready(0, now);
                now += 1000;
            }
            out
        };
        assert_eq!(delays, again, "same seed, same jitter");
        for d in delays {
            assert!((10..=80).contains(&d), "delay {d} outside [base, cap]");
        }
    }

    #[test]
    fn next_deadline_tracks_heartbeats_and_backoff() {
        let mut s = Scheduler::new(2, 1, cfg());
        assert_eq!(s.next_deadline(0), None, "nothing running, nothing pending-delayed");
        s.on_worker_ready(0, 0);
        s.tick(0);
        // Running worker: next interesting instant is the soft deadline.
        assert_eq!(s.next_deadline(0), Some(100));
        s.on_heartbeat(0, 40);
        assert_eq!(s.next_deadline(41), Some(140));
        // Past soft, the hard deadline is what remains.
        assert_eq!(s.next_deadline(150), Some(340));
        // A backoff-delayed pending cell contributes its expiry.
        s.on_worker_dead(0, "x", 150);
        let eligible = s.cells[0].eligible_at_ms;
        assert_eq!(s.next_deadline(150), Some(eligible));
    }

    #[test]
    fn resume_marking_skips_cells() {
        let mut s = Scheduler::new(3, 1, cfg());
        s.mark_done_upfront(1);
        s.on_worker_ready(0, 0);
        assert_eq!(dispatches(&s.tick(0)), vec![(0, 0)]);
        assert!(s.on_done(0, 0, 1));
        assert_eq!(dispatches(&s.tick(1)), vec![(0, 2)]);
        assert!(s.on_done(0, 2, 2));
        assert!(s.is_complete());
        assert_eq!(s.done_count(), 3);
    }

    #[test]
    fn affinity_routes_cells_to_the_worker_holding_their_series() {
        // Keys [A, B, B, A]: after the first round, worker 0 holds A and
        // worker 1 holds B — so worker 0 must skip cell 2 (B) and take
        // cell 3 (A), out of index order.
        let (a, b) = (0xaaaa, 0xbbbb);
        let mut s = Scheduler::new(4, 2, cfg());
        s.set_affinity(vec![a, b, b, a]);
        s.on_worker_ready(0, 0);
        s.on_worker_ready(1, 0);
        assert_eq!(dispatches(&s.tick(0)), vec![(0, 0), (1, 1)]);
        assert_eq!(s.affinity_stats(), (0, 2), "first dispatches are cold");
        assert!(s.on_done(0, 0, 10));
        assert_eq!(dispatches(&s.tick(10)), vec![(0, 3)], "held key beats index order");
        assert!(s.on_done(1, 1, 20));
        assert_eq!(dispatches(&s.tick(20)), vec![(1, 2)]);
        assert_eq!(s.affinity_stats(), (2, 2));
        assert!(s.on_done(0, 3, 30));
        assert!(s.on_done(1, 2, 30));
        assert!(s.is_complete());
    }

    #[test]
    fn worker_death_forgets_held_affinity_keys() {
        let mut s = Scheduler::new(2, 1, cfg());
        s.set_affinity(vec![7, 7]);
        s.on_worker_ready(0, 0);
        assert_eq!(dispatches(&s.tick(0)), vec![(0, 0)]);
        assert!(s.on_done(0, 0, 10));
        assert_eq!(dispatches(&s.tick(10)), vec![(0, 1)]);
        assert_eq!(s.affinity_stats(), (1, 1), "same key on the same process is a hit");
        // The worker dies mid-cell; the respawned process holds nothing,
        // so the retry of the same key is a miss.
        s.on_worker_dead(0, "killed", 20);
        s.on_worker_ready(0, 20);
        assert_eq!(dispatches(&s.tick(20 + 80)), vec![(0, 1)]);
        assert_eq!(s.affinity_stats(), (1, 2), "held keys do not survive the process");
    }

    #[test]
    fn without_affinity_keys_stats_stay_zero() {
        let mut s = Scheduler::new(2, 1, cfg());
        s.on_worker_ready(0, 0);
        s.tick(0);
        assert!(s.on_done(0, 0, 1));
        s.tick(1);
        assert_eq!(s.affinity_stats(), (0, 0));
    }

    #[test]
    #[should_panic(expected = "one affinity key per cell")]
    fn affinity_keys_must_cover_every_cell() {
        Scheduler::new(3, 1, cfg()).set_affinity(vec![1, 2]);
    }

    #[test]
    #[should_panic(expected = "hard timeout")]
    fn inverted_timeouts_rejected() {
        let mut c = cfg();
        c.hard_timeout_ms = c.soft_timeout_ms;
        Scheduler::new(1, 1, c);
    }
}
