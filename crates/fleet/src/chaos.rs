//! Scripted and randomized fault injection for fleet sweeps.
//!
//! A chaos plan is parsed from a `--chaos` spec string — `;`-separated
//! directives:
//!
//! * `kill:cell=3` — SIGABRT the worker running cell 3 mid-run (at slot 1
//!   by default; `kill:cell=3,slot=5` picks the slot). Fires on the
//!   cell's **first attempt only**, so the retry completes and the sweep
//!   still produces byte-identical output.
//! * `hang:cell=7` — the worker running cell 7 stops heartbeating and
//!   spins; only the coordinator's hard heartbeat deadline can recover
//!   this one. First attempt only.
//! * `poison:cell=5` — kill on **every** attempt: cell 5 burns through
//!   its retry budget and lands in quarantine. This is the directive the
//!   quarantine-report test uses.
//! * `rand:p=0.2,seed=42` — the seeded random killer: each cell's first
//!   attempt is killed with probability `p`, drawn from a splitmix64
//!   stream over `(seed, cell)` so the schedule is reproducible.
//! * `exit:after=5` — **coordinator** chaos: stop dispatching and return
//!   [`halted`](crate::coordinator::FleetOutcome::Halted) after 5 cells
//!   have been durably recorded — a scripted coordinator crash. Rerunning
//!   the same sweep resumes from the results directory.
//!
//! Worker-directed chaos travels *inside the job frame*
//! ([`crate::proto::CellSpec::chaos`]): the worker sabotages itself at an
//! exact slot, which makes "SIGKILL mid-cell" a deterministic, replayable
//! event instead of a race against an external killer.

use crate::proto::WorkerChaos;

/// A parsed chaos plan. See the module docs for the spec grammar.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ChaosPlan {
    /// Kill directives: `(cell, slot, every_attempt)`.
    kills: Vec<(usize, u32, bool)>,
    /// Hang directives: `(cell, slot)`.
    hangs: Vec<(usize, u32)>,
    /// Random killer `(probability per mille, seed)`.
    rand: Option<(u32, u64)>,
    /// Coordinator exit after N durable completions.
    pub exit_after: Option<usize>,
}

/// A malformed `--chaos` spec, with the offending directive.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChaosParseError(pub String);

impl core::fmt::Display for ChaosParseError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "bad chaos spec: {}", self.0)
    }
}

impl std::error::Error for ChaosParseError {}

fn parse_kv(item: &str, directive: &str) -> Result<Vec<(String, String)>, ChaosParseError> {
    item.split(',')
        .map(|kv| {
            let (k, v) = kv.split_once('=').ok_or_else(|| {
                ChaosParseError(format!("`{directive}`: expected key=value, got `{kv}`"))
            })?;
            Ok((k.trim().to_owned(), v.trim().to_owned()))
        })
        .collect()
}

fn get_num<T: std::str::FromStr>(
    kvs: &[(String, String)],
    key: &str,
    directive: &str,
) -> Result<Option<T>, ChaosParseError> {
    match kvs.iter().find(|(k, _)| k == key) {
        None => Ok(None),
        Some((_, v)) => v.parse::<T>().map(Some).map_err(|_| {
            ChaosParseError(format!("`{directive}`: `{key}` needs a number, got `{v}`"))
        }),
    }
}

impl ChaosPlan {
    /// Parses a `--chaos` spec.
    ///
    /// # Errors
    ///
    /// Returns [`ChaosParseError`] naming the directive on unknown verbs,
    /// missing keys or unparsable numbers.
    pub fn parse(spec: &str) -> Result<Self, ChaosParseError> {
        let mut plan = ChaosPlan::default();
        for directive in spec.split(';').map(str::trim).filter(|s| !s.is_empty()) {
            let (verb, rest) = directive
                .split_once(':')
                .ok_or_else(|| ChaosParseError(format!("`{directive}`: expected verb:args")))?;
            let kvs = parse_kv(rest, directive)?;
            let cell = get_num::<usize>(&kvs, "cell", directive)?;
            let slot = get_num::<u32>(&kvs, "slot", directive)?.unwrap_or(1);
            match verb.trim() {
                "kill" | "poison" => {
                    let cell = cell
                        .ok_or_else(|| ChaosParseError(format!("`{directive}`: needs cell=N")))?;
                    plan.kills.push((cell, slot, verb.trim() == "poison"));
                }
                "hang" => {
                    let cell = cell
                        .ok_or_else(|| ChaosParseError(format!("`{directive}`: needs cell=N")))?;
                    plan.hangs.push((cell, slot));
                }
                "rand" => {
                    let p = get_num::<f64>(&kvs, "p", directive)?
                        .ok_or_else(|| ChaosParseError(format!("`{directive}`: needs p=F")))?;
                    if !(0.0..=1.0).contains(&p) {
                        return Err(ChaosParseError(format!(
                            "`{directive}`: p must be in [0,1], got {p}"
                        )));
                    }
                    let seed = get_num::<u64>(&kvs, "seed", directive)?.unwrap_or(0xc4a0);
                    plan.rand = Some(((p * 1000.0).round() as u32, seed));
                }
                "exit" => {
                    let after = get_num::<usize>(&kvs, "after", directive)?
                        .ok_or_else(|| ChaosParseError(format!("`{directive}`: needs after=N")))?;
                    plan.exit_after = Some(after);
                }
                other => {
                    return Err(ChaosParseError(format!(
                        "unknown directive `{other}` (use kill|hang|poison|rand|exit)"
                    )));
                }
            }
        }
        Ok(plan)
    }

    /// The sabotage (if any) to embed in `cell`'s job frame for its
    /// `attempt`-th run (0-based). Scripted one-shot faults fire on
    /// attempt 0 only; `poison` fires on every attempt.
    pub fn worker_chaos(&self, cell: usize, attempt: u32) -> Option<WorkerChaos> {
        for &(c, slot, every) in &self.kills {
            if c == cell && (attempt == 0 || every) {
                return Some(WorkerChaos::KillAtSlot(slot));
            }
        }
        for &(c, slot) in &self.hangs {
            if c == cell && attempt == 0 {
                return Some(WorkerChaos::HangAtSlot(slot));
            }
        }
        if let Some((per_mille, seed)) = self.rand {
            if attempt == 0 {
                let mut state = seed ^ (cell as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15);
                let draw = splitmix64(&mut state);
                if (draw % 1000) < u64::from(per_mille) {
                    // A pseudo-random (but reproducible) kill slot ≥ 1.
                    let slot = 1 + (splitmix64(&mut state) % 8) as u32;
                    return Some(WorkerChaos::KillAtSlot(slot));
                }
            }
        }
        None
    }

    /// Whether any directive can sabotage workers (vs a pure `exit` plan).
    pub fn has_worker_chaos(&self) -> bool {
        !self.kills.is_empty() || !self.hangs.is_empty() || self.rand.is_some()
    }
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_issue_example() {
        let plan = ChaosPlan::parse("kill:cell=3;hang:cell=7").unwrap();
        assert_eq!(plan.worker_chaos(3, 0), Some(WorkerChaos::KillAtSlot(1)));
        assert_eq!(plan.worker_chaos(7, 0), Some(WorkerChaos::HangAtSlot(1)));
        assert_eq!(plan.worker_chaos(5, 0), None);
        // One-shot: the retry runs clean.
        assert_eq!(plan.worker_chaos(3, 1), None);
        assert_eq!(plan.worker_chaos(7, 1), None);
    }

    #[test]
    fn poison_fires_on_every_attempt() {
        let plan = ChaosPlan::parse("poison:cell=5,slot=2").unwrap();
        for attempt in 0..5 {
            assert_eq!(plan.worker_chaos(5, attempt), Some(WorkerChaos::KillAtSlot(2)));
        }
    }

    #[test]
    fn random_killer_is_seeded_and_reproducible() {
        let a = ChaosPlan::parse("rand:p=0.5,seed=42").unwrap();
        let b = ChaosPlan::parse("rand:p=0.5,seed=42").unwrap();
        let hits_a: Vec<_> = (0..100).map(|c| a.worker_chaos(c, 0)).collect();
        let hits_b: Vec<_> = (0..100).map(|c| b.worker_chaos(c, 0)).collect();
        assert_eq!(hits_a, hits_b);
        let n = hits_a.iter().filter(|h| h.is_some()).count();
        assert!((20..=80).contains(&n), "p=0.5 over 100 cells hit {n} times");
        // Retries are never re-killed.
        assert!((0..100).all(|c| a.worker_chaos(c, 1).is_none()));
        // A different seed gives a different schedule.
        let c = ChaosPlan::parse("rand:p=0.5,seed=43").unwrap();
        assert_ne!(hits_a, (0..100).map(|i| c.worker_chaos(i, 0)).collect::<Vec<_>>());
    }

    #[test]
    fn exit_after_parses() {
        let plan = ChaosPlan::parse("exit:after=5").unwrap();
        assert_eq!(plan.exit_after, Some(5));
        assert!(!plan.has_worker_chaos());
    }

    #[test]
    fn combined_spec() {
        let plan = ChaosPlan::parse("kill:cell=1,slot=4; exit:after=3; rand:p=0.1").unwrap();
        assert_eq!(plan.worker_chaos(1, 0), Some(WorkerChaos::KillAtSlot(4)));
        assert_eq!(plan.exit_after, Some(3));
        assert!(plan.has_worker_chaos());
    }

    #[test]
    fn bad_specs_name_the_directive() {
        for (spec, needle) in [
            ("explode:cell=1", "unknown directive"),
            ("kill:slot=2", "needs cell=N"),
            ("kill:cell=x", "needs a number"),
            ("rand:p=1.5", "must be in [0,1]"),
            ("exit:now", "expected key=value"),
            ("kill", "expected verb:args"),
        ] {
            let err = ChaosPlan::parse(spec).unwrap_err();
            assert!(err.to_string().contains(needle), "{spec}: {err}");
        }
    }

    #[test]
    fn empty_spec_is_a_no_op_plan() {
        let plan = ChaosPlan::parse("").unwrap();
        assert_eq!(plan, ChaosPlan::default());
        assert!(!plan.has_worker_chaos());
    }
}
