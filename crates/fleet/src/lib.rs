//! # sb-fleet — fault-tolerant multi-process sweep orchestration
//!
//! Runs a sweep's `(config × algorithm × seed)` cells across a fleet of
//! worker **processes** and produces output byte-identical to the
//! in-process `--jobs` runner, no matter how many workers die, hang, or
//! how often the coordinator itself is killed and restarted.
//!
//! The moving parts:
//!
//! * [`proto`] — the length-framed, checksummed job protocol spoken over
//!   worker stdin/stdout pipes, including wire-shipped topology series
//!   ([`proto::SeriesShipment`]: inline package bytes or a digest-keyed
//!   spill path). Every decoder returns [`sb_wire::WireError`] on
//!   garbage; none panic.
//! * [`sched`] — the pure scheduler state machine: heartbeat deadlines
//!   with slow-vs-dead hysteresis (suspect at the soft timeout, kill at
//!   the hard one), decorrelated-jitter retry backoff, poison-cell
//!   quarantine, and opt-in series-affinity dispatch (cells sharing a
//!   `(prepare_digest, seed)` key route back to a worker already holding
//!   that series). Takes explicit timestamps, so every transition is
//!   testable with a fake clock and zero sleeps.
//! * [`worker`] — the per-process cell executor: runs the engine slot by
//!   slot and heartbeats after every slot, so liveness means *progress*.
//!   Materializes shipped series through a per-process cache and falls
//!   back to the bit-identical local rebuild on any unusable shipment.
//! * [`results`] — the durable per-cell results directory (temp + fsync +
//!   rename, keyed by config digest): the crash-resumable unit. Also
//!   spills series packages too large to ship inline.
//! * [`chaos`] — scripted and seeded-random fault injection
//!   (`kill:cell=3;hang:cell=7`, `rand:p=0.2,seed=42`, `exit:after=5`)
//!   used by the chaos integration tests and the CI chaos job.
//! * [`coordinator`] — the I/O shell tying it together: spawn, dispatch,
//!   SIGKILL-and-respawn, durable-write-before-ack, resume-by-scan, and
//!   graceful degradation to in-process execution when spawning fails.
//!
//! The headline invariant, proven by `tests/fleet_chaos.rs`: **for any
//! worker count, kill schedule and resume point, the final metrics are
//! byte-identical** to an uninterrupted in-process run.

pub mod chaos;
pub mod coordinator;
pub mod proto;
pub mod results;
pub mod sched;
pub mod worker;

pub use chaos::{ChaosParseError, ChaosPlan};
pub use coordinator::{run_fleet, FleetError, FleetOptions, FleetOutcome, QuarantineReport};
pub use sched::SchedConfig;

use sb_sim::engine::AlgorithmKind;
use sb_sim::ScenarioConfig;

/// One cell of a sweep: everything a worker needs to recompute the run
/// from scratch, plus a human-readable label for failure reports.
#[derive(Debug, Clone)]
pub struct SweepCell {
    /// Human-readable cell name (shows up in quarantine reports).
    pub label: String,
    /// The full scenario configuration.
    pub scenario: ScenarioConfig,
    /// The admission algorithm to run.
    pub kind: AlgorithmKind,
    /// The workload seed.
    pub seed: u64,
}
