//! The sb-fleet worker binary: serves framed jobs on stdin, emits
//! heartbeats and results on stdout, and puts its dying words on stderr
//! (the coordinator keeps the tail as failure evidence).

fn main() {
    let stdin = std::io::stdin();
    let stdout = std::io::stdout();
    if let Err(msg) = sb_fleet::worker::worker_main(stdin.lock(), stdout.lock()) {
        eprintln!("sb-fleet-worker: {msg}");
        std::process::exit(1);
    }
}
