//! The per-cell durable results directory — the fleet's resumable unit.
//!
//! Every completed cell is persisted as `cell_<digest>.bin` under the
//! results directory, keyed by [`sb_sim::engine::run_digest`] over the
//! cell's `(scenario, algorithm, seed)`. Writes are atomic (temp file +
//! `fsync` + rename, then a directory fsync) so a coordinator killed at
//! any instant leaves either the complete old state or the complete new
//! state — never a torn record. Resume is a directory scan: cells whose
//! file exists and verifies are done, everything else is re-dispatched.
//! Because the key is the config digest, a results directory can never
//! leak a stale result into a changed sweep — a different config is a
//! different file name.

use sb_sim::RunMetrics;
use std::fs;
use std::io::{self, Write as _};
use std::path::{Path, PathBuf};

/// Magic prefix of a cell-result file.
const CELL_MAGIC: &[u8; 8] = b"SBCELL01";

/// Magic prefix of a shipped-series spill file.
const SERIES_MAGIC: &[u8; 8] = b"SBSERS01";

/// The path of one cell's result file.
pub fn cell_path(dir: &Path, digest: u64) -> PathBuf {
    dir.join(format!("cell_{digest:016x}.bin"))
}

/// Durably writes one cell's metrics: temp + fsync + rename + dir fsync.
///
/// # Errors
///
/// Propagates I/O errors (the caller maps them onto the owning cell).
pub fn store(dir: &Path, digest: u64, metrics: &RunMetrics) -> io::Result<()> {
    fs::create_dir_all(dir)?;
    let mut body = sb_wire::Writer::new();
    body.u64(digest);
    metrics.encode(&mut body);
    let body = body.into_bytes();
    let mut bytes = Vec::with_capacity(CELL_MAGIC.len() + 8 + body.len());
    bytes.extend_from_slice(CELL_MAGIC);
    bytes.extend_from_slice(&sb_wire::checksum(&body).to_le_bytes());
    bytes.extend_from_slice(&body);

    let path = cell_path(dir, digest);
    let tmp = path.with_extension("tmp");
    {
        let mut f = fs::File::create(&tmp)?;
        f.write_all(&bytes)?;
        f.sync_all()?;
    }
    fs::rename(&tmp, &path)?;
    // The rename itself must survive a crash: fsync the directory entry.
    // Failure here is non-fatal on filesystems that cannot open dirs.
    if let Ok(d) = fs::File::open(dir) {
        let _ = d.sync_all();
    }
    Ok(())
}

/// Loads one cell's metrics if its file exists and verifies (magic,
/// checksum, digest). Anything torn, corrupt or foreign reads as `None` —
/// the cell simply re-runs.
pub fn load(dir: &Path, digest: u64) -> Option<RunMetrics> {
    let bytes = fs::read(cell_path(dir, digest)).ok()?;
    let body = bytes.strip_prefix(CELL_MAGIC.as_slice())?;
    let (sum, body) = body.split_first_chunk::<8>()?;
    if u64::from_le_bytes(*sum) != sb_wire::checksum(body) {
        return None;
    }
    let mut r = sb_wire::Reader::new(body);
    if r.u64().ok()? != digest {
        return None;
    }
    let metrics = RunMetrics::decode(&mut r).ok()?;
    r.is_exhausted().then_some(metrics)
}

/// The path of one shipped series' spill file, keyed by the package
/// bytes' FNV-1a checksum.
pub fn series_path(dir: &Path, digest: u64) -> PathBuf {
    dir.join(format!("series_{digest:016x}.bin"))
}

/// Durably spills one encoded series package (temp + fsync + rename +
/// dir fsync, same discipline as [`store`]) and returns its path. The
/// coordinator embeds the path in job frames too large to carry the
/// package inline.
///
/// # Errors
///
/// Propagates I/O errors (the caller degrades to shipping nothing).
pub fn store_series(dir: &Path, digest: u64, package: &[u8]) -> io::Result<PathBuf> {
    fs::create_dir_all(dir)?;
    let mut bytes = Vec::with_capacity(SERIES_MAGIC.len() + 8 + package.len());
    bytes.extend_from_slice(SERIES_MAGIC);
    bytes.extend_from_slice(&digest.to_le_bytes());
    bytes.extend_from_slice(package);

    let path = series_path(dir, digest);
    let tmp = path.with_extension("tmp");
    {
        let mut f = fs::File::create(&tmp)?;
        f.write_all(&bytes)?;
        f.sync_all()?;
    }
    fs::rename(&tmp, &path)?;
    if let Ok(d) = fs::File::open(dir) {
        let _ = d.sync_all();
    }
    Ok(path)
}

/// Loads one spilled series package if the file exists and verifies:
/// magic, stored digest, and the package bytes actually hashing to that
/// digest (the digest *is* the content checksum, so one comparison
/// covers both identity and integrity). Anything torn, corrupt or
/// foreign reads as `None` — the worker simply rebuilds the series
/// locally.
pub fn load_series(path: &Path, digest: u64) -> Option<Vec<u8>> {
    let bytes = fs::read(path).ok()?;
    let body = bytes.strip_prefix(SERIES_MAGIC.as_slice())?;
    let (stored, package) = body.split_first_chunk::<8>()?;
    if u64::from_le_bytes(*stored) != digest || sb_wire::checksum(package) != digest {
        return None;
    }
    Some(package.to_vec())
}

#[cfg(test)]
mod tests {
    use super::*;
    use sb_sim::engine::{run, AlgorithmKind};
    use sb_sim::ScenarioConfig;

    fn tmp(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("sb_fleet_results_{tag}"));
        fs::remove_dir_all(&dir).ok();
        dir
    }

    #[test]
    fn roundtrips_bit_exactly() {
        let dir = tmp("roundtrip");
        let m = run(&ScenarioConfig::tiny(), &AlgorithmKind::Ssp, 3);
        store(&dir, 0xfeed, &m).unwrap();
        assert_eq!(load(&dir, 0xfeed), Some(m));
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn wrong_digest_and_corruption_read_as_absent() {
        let dir = tmp("corrupt");
        let m = run(&ScenarioConfig::tiny(), &AlgorithmKind::Ssp, 3);
        store(&dir, 0xfeed, &m).unwrap();
        assert_eq!(load(&dir, 0xbeef), None, "different digest, different file");
        // Flip one payload byte: checksum must catch it.
        let path = cell_path(&dir, 0xfeed);
        let mut bytes = fs::read(&path).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0x40;
        fs::write(&path, &bytes).unwrap();
        assert_eq!(load(&dir, 0xfeed), None);
        // Truncations never panic, never load.
        for cut in 0..bytes.len() {
            bytes[last] ^= 0x40; // restore
            fs::write(&path, &bytes[..cut]).unwrap();
            assert_eq!(load(&dir, 0xfeed), None, "cut at {cut}");
        }
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn missing_directory_reads_as_absent() {
        assert_eq!(load(Path::new("/nonexistent/sb-fleet"), 1), None);
    }

    #[test]
    fn series_spill_roundtrips_and_rejects_corruption() {
        let dir = tmp("series");
        let package: Vec<u8> = (0..200u16).map(|i| (i % 251) as u8).collect();
        let digest = sb_wire::checksum(&package);
        let path = store_series(&dir, digest, &package).unwrap();
        assert_eq!(path, series_path(&dir, digest));
        assert_eq!(load_series(&path, digest), Some(package.clone()));
        // A foreign digest never loads someone else's bytes.
        assert_eq!(load_series(&path, digest ^ 1), None);
        // Flip one payload byte: the content checksum must catch it.
        let mut bytes = fs::read(&path).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0x08;
        fs::write(&path, &bytes).unwrap();
        assert_eq!(load_series(&path, digest), None);
        // Truncations never panic, never load.
        bytes[last] ^= 0x08;
        for cut in 0..bytes.len() {
            fs::write(&path, &bytes[..cut]).unwrap();
            assert_eq!(load_series(&path, digest), None, "cut at {cut}");
        }
        assert_eq!(load_series(Path::new("/nonexistent/series.bin"), digest), None);
        fs::remove_dir_all(&dir).ok();
    }
}
