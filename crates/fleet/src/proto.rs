//! The sb-fleet job protocol: length-framed sb-wire messages between the
//! coordinator and its worker processes.
//!
//! Transport is the workers' stdin/stdout pipes. Every message is one
//! [`sb_wire::frame`] (length + FNV-1a checksum + payload), so a killed
//! worker can never leave a half-message that parses: a torn frame reads
//! as `Incomplete`, a corrupted one as `Corrupt`, and the payload decoders
//! below return [`WireError`] — never panic — on anything malformed,
//! extending the sb-wire never-panics discipline to the fleet layer.
//!
//! A cell's scenario and algorithm travel as serde-JSON strings inside the
//! frame (the workspace's configs are all serde round-trippable, and
//! Rust's float formatting is shortest-round-trip so the decode is
//! bit-exact). Drift is impossible to miss: [`CellSpec`] carries the
//! coordinator's [`sb_sim::engine::run_digest`] and both sides recompute
//! it — a worker whose decoded `(scenario, kind, seed)` hashes differently
//! refuses the job, and the coordinator refuses a `Done` whose digest is
//! not the one it dispatched.

use sb_sim::engine::{run_digest, AlgorithmKind};
use sb_sim::{ScenarioConfig, SearchKind};
use sb_wire::{Reader, WireError, Writer};

/// Protocol version; bumped on any frame-format change. A worker greets
/// with its version and the coordinator refuses a mismatch outright
/// rather than misparse jobs. Version 3 added the optional shipped
/// topology series ([`SeriesShipment`]) to [`CellSpec`].
pub const PROTO_VERSION: u32 = 3;

/// Upper bound on one protocol frame's payload. Cells are a few KB of
/// JSON and metrics a few KB of wire encoding; 16 MiB is comfortably
/// above any legitimate message and small enough to reject corrupt
/// length prefixes instantly.
pub const MAX_FRAME: u32 = 16 << 20;

/// Scripted self-sabotage carried inside a job: the chaos harness makes
/// the *worker* inject its own fault at an exact, reproducible point
/// instead of racing an external killer against the run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WorkerChaos {
    /// `abort()` (SIGABRT, no unwinding — indistinguishable from a
    /// SIGKILL to the coordinator) when the run reaches this slot.
    KillAtSlot(u32),
    /// Stop heartbeating at this slot and spin forever: the silent-hang
    /// failure mode that only heartbeat deadlines can detect.
    HangAtSlot(u32),
}

impl WorkerChaos {
    fn encode(this: &Option<WorkerChaos>, w: &mut Writer) {
        match this {
            None => w.u8(0),
            Some(WorkerChaos::KillAtSlot(s)) => {
                w.u8(1);
                w.u32(*s);
            }
            Some(WorkerChaos::HangAtSlot(s)) => {
                w.u8(2);
                w.u32(*s);
            }
        }
    }

    fn decode(r: &mut Reader<'_>) -> Result<Option<WorkerChaos>, WireError> {
        match r.u8()? {
            0 => Ok(None),
            1 => Ok(Some(WorkerChaos::KillAtSlot(r.u32()?))),
            2 => Ok(Some(WorkerChaos::HangAtSlot(r.u32()?))),
            tag => Err(WireError::BadTag { tag, context: "WorkerChaos" }),
        }
    }
}

/// A pre-compiled topology series riding along with a job, so the worker
/// can materialize snapshots instead of rebuilding the series from
/// orbits. Purely an acceleration: the materialized series is
/// bit-identical to a local rebuild, and a worker that cannot obtain or
/// decode the shipment silently rebuilds.
#[derive(Debug, Clone, PartialEq)]
pub enum SeriesShipment {
    /// The encoded [`sb_topology::shipping::SeriesPackage`] bytes,
    /// carried inside the job frame (small series).
    Inline(Vec<u8>),
    /// A reference to a digest-keyed spill file the coordinator wrote
    /// durably (temp + fsync + rename; see [`crate::results`]) — used
    /// when the package would not fit comfortably in one frame.
    Spill {
        /// Path of the spill file on the shared local filesystem.
        path: String,
        /// FNV-1a checksum of the package bytes, re-verified on load.
        digest: u64,
    },
}

impl SeriesShipment {
    /// The shipment's content digest — the worker's reuse-cache key.
    pub fn digest(&self) -> u64 {
        match self {
            SeriesShipment::Inline(bytes) => sb_wire::checksum(bytes),
            SeriesShipment::Spill { digest, .. } => *digest,
        }
    }

    fn encode(this: &Option<SeriesShipment>, w: &mut Writer) {
        match this {
            None => w.u8(0),
            Some(SeriesShipment::Inline(bytes)) => {
                w.u8(1);
                w.bytes(bytes);
            }
            Some(SeriesShipment::Spill { path, digest }) => {
                w.u8(2);
                w.str(path);
                w.u64(*digest);
            }
        }
    }

    fn decode(r: &mut Reader<'_>) -> Result<Option<SeriesShipment>, WireError> {
        match r.u8()? {
            0 => Ok(None),
            1 => Ok(Some(SeriesShipment::Inline(r.bytes()?))),
            2 => Ok(Some(SeriesShipment::Spill { path: r.str()?, digest: r.u64()? })),
            tag => Err(WireError::BadTag { tag, context: "SeriesShipment" }),
        }
    }
}

/// One sweep cell, fully specified: everything a worker needs to
/// reproduce the cell bit-for-bit in its own address space.
#[derive(Debug, Clone, PartialEq)]
pub struct CellSpec {
    /// Human-readable cell label (for reports and stderr tails).
    pub label: String,
    /// The experiment configuration.
    pub scenario: ScenarioConfig,
    /// The algorithm to run.
    pub kind: AlgorithmKind,
    /// The workload seed.
    pub seed: u64,
    /// The coordinator's [`run_digest`] over `(scenario, kind, seed)`;
    /// the worker recomputes and must agree.
    pub digest: u64,
    /// Speculative quote threads inside the admission (bit-identical).
    pub quote_threads: usize,
    /// Topology build threads (bit-identical).
    pub build_threads: usize,
    /// Shortest-path kernel inside each admission (bit-identical).
    pub search: SearchKind,
    /// Scripted self-sabotage, if the chaos plan targets this attempt.
    pub chaos: Option<WorkerChaos>,
    /// The pre-compiled topology series for this cell's
    /// `(prepare_digest, seed)` key, if the coordinator shipped one.
    pub ship: Option<SeriesShipment>,
}

impl CellSpec {
    /// Encodes the spec into `w`.
    pub fn encode(&self, w: &mut Writer) {
        w.str(&self.label);
        w.str(&serde_json::to_string(&self.scenario).unwrap_or_default());
        w.str(&serde_json::to_string(&self.kind).unwrap_or_default());
        w.u64(self.seed);
        w.u64(self.digest);
        w.usize(self.quote_threads);
        w.usize(self.build_threads);
        w.u8(match self.search {
            SearchKind::Reference => 0,
            SearchKind::Astar => 1,
        });
        WorkerChaos::encode(&self.chaos, w);
        SeriesShipment::encode(&self.ship, w);
    }

    /// Decodes a spec, validating eagerly: malformed JSON, a thread count
    /// of zero, or a digest that does not match the decoded
    /// `(scenario, kind, seed)` all surface as [`WireError`] here rather
    /// than as a wrong-config run later.
    pub fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let label = r.str()?;
        let scenario_json = r.str()?;
        let kind_json = r.str()?;
        let scenario: ScenarioConfig = serde_json::from_str(&scenario_json)
            .map_err(|e| WireError::Invalid { detail: format!("cell scenario JSON: {e}") })?;
        let kind: AlgorithmKind = serde_json::from_str(&kind_json)
            .map_err(|e| WireError::Invalid { detail: format!("cell algorithm JSON: {e}") })?;
        let seed = r.u64()?;
        let digest = r.u64()?;
        let quote_threads = r.usize()?;
        let build_threads = r.usize()?;
        if quote_threads == 0 || build_threads == 0 {
            return Err(WireError::Invalid {
                detail: format!(
                    "zero thread count in cell spec (quote={quote_threads}, build={build_threads})"
                ),
            });
        }
        let search = match r.u8()? {
            0 => SearchKind::Reference,
            1 => SearchKind::Astar,
            tag => return Err(WireError::BadTag { tag, context: "SearchKind" }),
        };
        let chaos = WorkerChaos::decode(r)?;
        let ship = SeriesShipment::decode(r)?;
        let expected = run_digest(&scenario, &kind, seed);
        if expected != digest {
            return Err(WireError::Invalid {
                detail: format!(
                    "cell digest mismatch: dispatched {digest:#018x}, decoded config hashes to \
                     {expected:#018x}"
                ),
            });
        }
        Ok(CellSpec {
            label,
            scenario,
            kind,
            seed,
            digest,
            quote_threads,
            build_threads,
            search,
            chaos,
            ship,
        })
    }
}

/// Coordinator → worker messages.
#[derive(Debug, Clone, PartialEq)]
pub enum JobMsg {
    /// Run this cell; `job` is the coordinator's cell index, echoed back
    /// in every response so late frames from a superseded job are
    /// recognizable.
    Run {
        /// The coordinator's cell index.
        job: u64,
        /// The full cell specification.
        spec: Box<CellSpec>,
    },
    /// Drain and exit cleanly.
    Shutdown,
}

impl JobMsg {
    /// Encodes the message body (unframed).
    pub fn encode(&self, w: &mut Writer) {
        match self {
            JobMsg::Run { job, spec } => {
                w.u8(1);
                w.u64(*job);
                spec.encode(w);
            }
            JobMsg::Shutdown => w.u8(2),
        }
    }

    /// Decodes one message body. Trailing bytes are malformed: a frame
    /// holds exactly one message.
    pub fn decode(bytes: &[u8]) -> Result<Self, WireError> {
        let mut r = Reader::new(bytes);
        let msg = match r.u8()? {
            1 => JobMsg::Run { job: r.u64()?, spec: Box::new(CellSpec::decode(&mut r)?) },
            2 => JobMsg::Shutdown,
            tag => return Err(WireError::BadTag { tag, context: "JobMsg" }),
        };
        if !r.is_exhausted() {
            return Err(WireError::Invalid {
                detail: format!("{} trailing bytes after JobMsg", r.remaining()),
            });
        }
        Ok(msg)
    }
}

/// Worker → coordinator messages.
#[derive(Debug, Clone, PartialEq)]
pub enum WorkerMsg {
    /// Greeting sent once on startup, before any job.
    Ready {
        /// The worker's process id (for kill bookkeeping and logs).
        pid: u32,
        /// The worker's [`PROTO_VERSION`].
        proto: u32,
    },
    /// Liveness: sent when a job is accepted and after every completed
    /// slot. A worker that stops heartbeating past the coordinator's hard
    /// deadline is declared dead and SIGKILLed.
    Heartbeat {
        /// The job this heartbeat belongs to.
        job: u64,
        /// Slots completed so far.
        slot: u32,
    },
    /// The cell finished; metrics follow.
    Done {
        /// The finished job's cell index.
        job: u64,
        /// The cell digest, re-verified by the coordinator.
        digest: u64,
        /// The run's metrics.
        metrics: Box<sb_sim::RunMetrics>,
    },
    /// The cell failed inside the worker (the worker itself survives and
    /// can take new jobs — e.g. a durable-run I/O error).
    Failed {
        /// The failed job's cell index.
        job: u64,
        /// Human-readable failure description.
        detail: String,
    },
}

impl WorkerMsg {
    /// Encodes the message body (unframed).
    pub fn encode(&self, w: &mut Writer) {
        match self {
            WorkerMsg::Ready { pid, proto } => {
                w.u8(1);
                w.u32(*pid);
                w.u32(*proto);
            }
            WorkerMsg::Heartbeat { job, slot } => {
                w.u8(2);
                w.u64(*job);
                w.u32(*slot);
            }
            WorkerMsg::Done { job, digest, metrics } => {
                w.u8(3);
                w.u64(*job);
                w.u64(*digest);
                metrics.encode(w);
            }
            WorkerMsg::Failed { job, detail } => {
                w.u8(4);
                w.u64(*job);
                w.str(detail);
            }
        }
    }

    /// Decodes one message body; trailing bytes are malformed.
    pub fn decode(bytes: &[u8]) -> Result<Self, WireError> {
        let mut r = Reader::new(bytes);
        let msg = match r.u8()? {
            1 => WorkerMsg::Ready { pid: r.u32()?, proto: r.u32()? },
            2 => WorkerMsg::Heartbeat { job: r.u64()?, slot: r.u32()? },
            3 => WorkerMsg::Done {
                job: r.u64()?,
                digest: r.u64()?,
                metrics: Box::new(sb_sim::RunMetrics::decode(&mut r)?),
            },
            4 => WorkerMsg::Failed { job: r.u64()?, detail: r.str()? },
            tag => return Err(WireError::BadTag { tag, context: "WorkerMsg" }),
        };
        if !r.is_exhausted() {
            return Err(WireError::Invalid {
                detail: format!("{} trailing bytes after WorkerMsg", r.remaining()),
            });
        }
        Ok(msg)
    }
}

/// Frames an encoded message body and writes it with a flush — a message
/// is only *sent* once the pipe has it, since the receiver's liveness
/// deadlines start from what actually arrived.
fn send_framed<W: std::io::Write>(
    out: &mut W,
    encode: impl FnOnce(&mut Writer),
) -> std::io::Result<()> {
    let mut w = Writer::new();
    encode(&mut w);
    let mut framed = Vec::new();
    sb_wire::frame::write_frame(&mut framed, &w.into_bytes());
    out.write_all(&framed)?;
    out.flush()
}

/// Writes one framed [`JobMsg`] and flushes.
pub fn send_job<W: std::io::Write>(out: &mut W, msg: &JobMsg) -> std::io::Result<()> {
    send_framed(out, |w| msg.encode(w))
}

/// Writes one framed [`WorkerMsg`] and flushes.
pub fn send_worker_msg<W: std::io::Write>(out: &mut W, msg: &WorkerMsg) -> std::io::Result<()> {
    send_framed(out, |w| msg.encode(w))
}

/// A blocking frame reader over a byte stream (a pipe end): accumulates
/// bytes until one whole checksummed frame is available and returns its
/// payload. EOF mid-frame and corrupt frames are both terminal for a
/// stream transport — resynchronizing inside a byte pipe is guesswork.
#[derive(Debug)]
pub struct FrameReader<R> {
    inner: R,
    buf: Vec<u8>,
}

/// What [`FrameReader::next_frame`] produced.
#[derive(Debug, PartialEq, Eq)]
pub enum NextFrame {
    /// One complete, checksum-verified payload.
    Payload(Vec<u8>),
    /// Clean end of stream on a frame boundary (peer closed the pipe).
    Eof,
    /// End of stream inside a frame (peer died mid-write) or a corrupt
    /// frame (checksum/length mismatch).
    Corrupt,
}

impl<R: std::io::Read> FrameReader<R> {
    /// A reader at the start of the stream.
    pub fn new(inner: R) -> Self {
        FrameReader { inner, buf: Vec::new() }
    }

    /// Blocks until one whole frame (or EOF/corruption) is available.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors other than interruption (`EINTR` retries).
    pub fn next_frame(&mut self) -> std::io::Result<NextFrame> {
        let mut chunk = [0u8; 8192];
        loop {
            match sb_wire::frame::read_frame(&self.buf, MAX_FRAME) {
                sb_wire::frame::FrameStatus::Complete { payload, consumed } => {
                    let payload = payload.to_vec();
                    self.buf.drain(..consumed);
                    return Ok(NextFrame::Payload(payload));
                }
                sb_wire::frame::FrameStatus::Corrupt => return Ok(NextFrame::Corrupt),
                sb_wire::frame::FrameStatus::Incomplete => {}
            }
            match self.inner.read(&mut chunk) {
                Ok(0) => {
                    return Ok(if self.buf.is_empty() {
                        NextFrame::Eof
                    } else {
                        NextFrame::Corrupt
                    });
                }
                Ok(n) => self.buf.extend_from_slice(&chunk[..n]),
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> CellSpec {
        let scenario = ScenarioConfig::tiny();
        let kind = AlgorithmKind::Ssp;
        let seed = 7;
        CellSpec {
            label: "tiny-ssp-s7".into(),
            digest: run_digest(&scenario, &kind, seed),
            scenario,
            kind,
            seed,
            quote_threads: 1,
            build_threads: 2,
            search: SearchKind::Reference,
            chaos: Some(WorkerChaos::KillAtSlot(3)),
            ship: Some(SeriesShipment::Inline(vec![1, 2, 3, 4])),
        }
    }

    #[test]
    fn shipment_variants_roundtrip() {
        for ship in [
            None,
            Some(SeriesShipment::Inline(vec![7; 32])),
            Some(SeriesShipment::Spill { path: "/tmp/series_abc.bin".into(), digest: 0xfeed }),
        ] {
            let mut s = spec();
            s.ship = ship;
            let msg = JobMsg::Run { job: 1, spec: Box::new(s) };
            let mut w = Writer::new();
            msg.encode(&mut w);
            assert_eq!(JobMsg::decode(&w.into_bytes()).unwrap(), msg);
        }
    }

    #[test]
    fn shipment_digest_keys_both_variants() {
        let inline = SeriesShipment::Inline(vec![9, 9, 9]);
        assert_eq!(inline.digest(), sb_wire::checksum(&[9, 9, 9]));
        let spill = SeriesShipment::Spill { path: "x".into(), digest: 42 };
        assert_eq!(spill.digest(), 42);
    }

    #[test]
    fn job_roundtrip() {
        let msg = JobMsg::Run { job: 42, spec: Box::new(spec()) };
        let mut w = Writer::new();
        msg.encode(&mut w);
        assert_eq!(JobMsg::decode(&w.into_bytes()).unwrap(), msg);

        let mut w = Writer::new();
        JobMsg::Shutdown.encode(&mut w);
        assert_eq!(JobMsg::decode(&w.into_bytes()).unwrap(), JobMsg::Shutdown);
    }

    #[test]
    fn worker_msg_roundtrip() {
        let run = sb_sim::engine::run(&ScenarioConfig::tiny(), &AlgorithmKind::Ssp, 1);
        let msgs = [
            WorkerMsg::Ready { pid: 1234, proto: PROTO_VERSION },
            WorkerMsg::Heartbeat { job: 9, slot: 17 },
            WorkerMsg::Done { job: 9, digest: 0xabcd, metrics: Box::new(run) },
            WorkerMsg::Failed { job: 9, detail: "disk full".into() },
        ];
        for msg in msgs {
            let mut w = Writer::new();
            msg.encode(&mut w);
            assert_eq!(WorkerMsg::decode(&w.into_bytes()).unwrap(), msg);
        }
    }

    #[test]
    fn digest_mismatch_refused_at_decode() {
        let mut s = spec();
        s.digest ^= 1;
        let mut w = Writer::new();
        JobMsg::Run { job: 0, spec: Box::new(s) }.encode(&mut w);
        let err = JobMsg::decode(&w.into_bytes()).unwrap_err();
        assert!(matches!(err, WireError::Invalid { .. }), "got {err:?}");
        assert!(format!("{err}").contains("digest mismatch"));
    }

    #[test]
    fn trailing_bytes_rejected() {
        let mut w = Writer::new();
        WorkerMsg::Heartbeat { job: 1, slot: 2 }.encode(&mut w);
        let mut bytes = w.into_bytes();
        bytes.push(0);
        assert!(matches!(WorkerMsg::decode(&bytes), Err(WireError::Invalid { .. })));
    }

    #[test]
    fn frame_reader_reassembles_split_writes() {
        let msg = JobMsg::Run { job: 3, spec: Box::new(spec()) };
        let mut w = Writer::new();
        msg.encode(&mut w);
        let mut framed = Vec::new();
        sb_wire::frame::write_frame(&mut framed, &w.into_bytes());
        // Deliver the frame one byte at a time through a reader that
        // returns a single byte per read call.
        struct Trickle(std::io::Cursor<Vec<u8>>);
        impl std::io::Read for Trickle {
            fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
                let take = 1.min(buf.len());
                std::io::Read::read(&mut self.0, &mut buf[..take])
            }
        }
        let mut r = FrameReader::new(Trickle(std::io::Cursor::new(framed)));
        match r.next_frame().unwrap() {
            NextFrame::Payload(p) => assert_eq!(JobMsg::decode(&p).unwrap(), msg),
            other => panic!("expected payload, got {other:?}"),
        }
        assert_eq!(r.next_frame().unwrap(), NextFrame::Eof);
    }

    #[test]
    fn frame_reader_flags_torn_tail_as_corrupt() {
        let mut framed = Vec::new();
        sb_wire::frame::write_frame(&mut framed, b"payload");
        framed.truncate(framed.len() - 3); // peer died mid-write
        let mut r = FrameReader::new(std::io::Cursor::new(framed));
        assert_eq!(r.next_frame().unwrap(), NextFrame::Corrupt);
    }
}
