//! The fleet coordinator: spawns workers, dispatches cells, survives
//! everything.
//!
//! The I/O shell around [`crate::sched::Scheduler`]. It owns the worker
//! processes (spawn, SIGKILL, respawn, reap), pumps their stdout pipes
//! into scheduler events via one reader thread per worker, executes the
//! scheduler's actions, and persists every completed cell durably
//! ([`crate::results`]) **before** acknowledging it — so a coordinator
//! killed at any instant resumes by scanning the results directory and
//! re-dispatching only the missing cells.
//!
//! Determinism: cells are pure functions of their spec, results are
//! collected by cell index, and the final vector is assembled in cell
//! order — so the output is byte-identical to the in-process `--jobs`
//! runner for any worker count, any kill schedule, and any resume point.
//!
//! When spawning workers fails outright the coordinator degrades to
//! in-process execution of the remaining cells through the same
//! [`crate::worker::run_cell_local`] path (identical bytes, no isolation).

use crate::chaos::ChaosPlan;
use crate::proto::{send_job, CellSpec, FrameReader, JobMsg, NextFrame, SeriesShipment, WorkerMsg};
use crate::results;
use crate::sched::{Action, CellStatus, SchedConfig, Scheduler};
use crate::SweepCell;
use sb_sim::engine::{prepare_digest, run_digest};
use sb_sim::{PreparedCache, RunMetrics};
use std::collections::HashMap;
use std::io;
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::sync::mpsc;
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Bytes of a dead worker's stderr kept as failure evidence.
const STDERR_TAIL_BYTES: usize = 4096;

/// Total bytes of joined stderr tails a quarantine report may print. Each
/// tail is individually bounded by [`STDERR_TAIL_BYTES`], but a sweep can
/// quarantine many cells; the report stays readable by spending one fixed
/// budget across all of them, eliding the rest (every cell stays named).
const QUARANTINE_TAIL_BUDGET_BYTES: usize = 16 * 1024;

/// Largest series package carried inline in a job frame; bigger packages
/// are spilled next to the results ([`results::store_series`]) and the
/// frame carries the path. Well under the protocol's frame cap.
const INLINE_SHIP_MAX_BYTES: usize = 4 << 20;

/// How a fleet sweep should run.
#[derive(Debug, Clone)]
pub struct FleetOptions {
    /// Worker processes to spawn.
    pub workers: usize,
    /// The worker binary. `None` looks for `sb-fleet-worker` next to the
    /// current executable.
    pub worker_bin: Option<PathBuf>,
    /// The per-cell durable results directory (the resumable unit).
    pub results_dir: PathBuf,
    /// Liveness and retry tuning.
    pub sched: SchedConfig,
    /// Fault injection (empty plan = none).
    pub chaos: ChaosPlan,
    /// Speculative quote threads inside each admission (bit-identical).
    pub quote_threads: usize,
    /// Topology build threads inside each worker (bit-identical).
    pub build_threads: usize,
    /// Shortest-path kernel inside each admission (bit-identical).
    pub search: sb_sim::SearchKind,
}

impl FleetOptions {
    /// Defaults: `workers` processes, results under `results_dir`, stock
    /// timeouts, no chaos.
    pub fn new(workers: usize, results_dir: impl Into<PathBuf>) -> Self {
        FleetOptions {
            workers: workers.max(1),
            worker_bin: None,
            results_dir: results_dir.into(),
            sched: SchedConfig::default(),
            chaos: ChaosPlan::default(),
            quote_threads: 1,
            build_threads: 1,
            search: sb_sim::SearchKind::default(),
        }
    }
}

/// How a fleet session ended (short of an error).
#[derive(Debug)]
pub enum FleetOutcome {
    /// Every cell ran (or was resumed); metrics in cell order.
    Completed(Vec<RunMetrics>),
    /// The chaos plan's `exit:after=N` fired: the coordinator stopped
    /// after durably recording `completed_this_session` cells, simulating
    /// a coordinator crash. Rerun the same sweep to resume.
    Halted {
        /// Cells durably recorded in this session before the scripted
        /// exit.
        completed_this_session: usize,
    },
}

/// A quarantined cell in the failure report: named, counted, and carrying
/// the dead workers' last words.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QuarantineReport {
    /// The cell index in the sweep.
    pub cell: usize,
    /// The cell's label.
    pub label: String,
    /// Attempts consumed before quarantine.
    pub attempts: u32,
    /// The last failure: the worker's reported error, or the tail of its
    /// stderr at death.
    pub stderr_tail: String,
}

impl core::fmt::Display for QuarantineReport {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        let tail =
            if self.stderr_tail.is_empty() { "<empty>" } else { self.stderr_tail.trim_end() };
        write!(
            f,
            "cell {} `{}` quarantined after {} attempts; last stderr tail:\n{tail}",
            self.cell, self.label, self.attempts
        )
    }
}

/// Why a fleet sweep failed.
#[derive(Debug)]
pub enum FleetError {
    /// One or more poison cells exhausted their retries. The rest of the
    /// sweep finished first; the run still fails (nonzero exit) with each
    /// cell named.
    Quarantine(Vec<QuarantineReport>),
    /// A filesystem operation on the results directory failed.
    Io {
        /// The path involved.
        path: PathBuf,
        /// The OS error.
        source: io::Error,
    },
}

/// The longest prefix of `s` at most `max` bytes long, cut on a char
/// boundary.
fn clip_utf8(s: &str, max: usize) -> &str {
    if s.len() <= max {
        return s;
    }
    let mut end = max;
    while end > 0 && !s.is_char_boundary(end) {
        end -= 1;
    }
    &s[..end]
}

impl core::fmt::Display for FleetError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            FleetError::Quarantine(cells) => {
                writeln!(f, "{} cell(s) quarantined:", cells.len())?;
                // One fixed byte budget across every joined tail, so a
                // mass quarantine cannot flood the terminal or a CI log.
                let mut budget = QUARANTINE_TAIL_BUDGET_BYTES;
                for c in cells {
                    writeln!(
                        f,
                        "cell {} `{}` quarantined after {} attempts; last stderr tail:",
                        c.cell, c.label, c.attempts
                    )?;
                    let tail =
                        if c.stderr_tail.is_empty() { "<empty>" } else { c.stderr_tail.trim_end() };
                    let shown = clip_utf8(tail, budget);
                    budget -= shown.len();
                    if shown.len() < tail.len() {
                        writeln!(
                            f,
                            "{shown}… ({} bytes elided by the {}-byte report budget)",
                            tail.len() - shown.len(),
                            QUARANTINE_TAIL_BUDGET_BYTES
                        )?;
                    } else {
                        writeln!(f, "{shown}")?;
                    }
                }
                Ok(())
            }
            FleetError::Io { path, source } => {
                write!(f, "fleet I/O error on {}: {source}", path.display())
            }
        }
    }
}

impl std::error::Error for FleetError {}

/// One event from a worker's pipe pump.
enum Event {
    Msg { slot: usize, gen: u64, msg: WorkerMsg },
    Dead { slot: usize, gen: u64 },
}

/// A live worker process and its plumbing.
struct WorkerProc {
    child: Child,
    gen: u64,
    stdin: Option<std::process::ChildStdin>,
    stderr_tail: Arc<Mutex<Vec<u8>>>,
    stderr_pump: Option<std::thread::JoinHandle<()>>,
}

impl WorkerProc {
    /// The worker's stderr tail. Call only after the child is dead: joins
    /// the pump thread (its pipe is at EOF by then), so the snapshot is
    /// complete rather than racing the pump.
    fn tail(&mut self) -> String {
        if let Some(pump) = self.stderr_pump.take() {
            let _ = pump.join();
        }
        let buf = self.stderr_tail.lock().expect("stderr tail poisoned");
        String::from_utf8_lossy(&buf).into_owned()
    }
}

fn spawn_worker(
    bin: &std::path::Path,
    slot: usize,
    gen: u64,
    tx: &mpsc::Sender<Event>,
) -> io::Result<WorkerProc> {
    let mut child = Command::new(bin)
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()?;
    let stdin = child.stdin.take();
    let stdout = child.stdout.take().expect("piped stdout");
    let stderr = child.stderr.take().expect("piped stderr");
    let stderr_tail = Arc::new(Mutex::new(Vec::new()));

    // Stderr pump: keep only the newest tail, so a chatty worker cannot
    // balloon the coordinator.
    let tail = Arc::clone(&stderr_tail);
    let stderr_pump = std::thread::spawn(move || {
        use io::Read as _;
        let mut stderr = stderr;
        let mut chunk = [0u8; 1024];
        while let Ok(n) = stderr.read(&mut chunk) {
            if n == 0 {
                break;
            }
            let mut buf = tail.lock().expect("stderr tail poisoned");
            buf.extend_from_slice(&chunk[..n]);
            if buf.len() > STDERR_TAIL_BYTES {
                let cut = buf.len() - STDERR_TAIL_BYTES;
                buf.drain(..cut);
            }
        }
    });

    // Stdout pump: frames become events; EOF or corruption becomes a
    // death notice. Protocol-undecodable payloads also count as death —
    // a worker speaking garbage cannot be trusted with cells.
    let tx = tx.clone();
    std::thread::spawn(move || {
        let mut reader = FrameReader::new(stdout);
        while let Ok(NextFrame::Payload(p)) = reader.next_frame() {
            match WorkerMsg::decode(&p) {
                Ok(msg) => {
                    if tx.send(Event::Msg { slot, gen, msg }).is_err() {
                        return;
                    }
                }
                Err(_) => break,
            }
        }
        let _ = tx.send(Event::Dead { slot, gen });
    });

    Ok(WorkerProc { child, gen, stdin, stderr_tail, stderr_pump: Some(stderr_pump) })
}

/// Runs a sweep across worker processes with full fault tolerance. See
/// the module docs; this is the fleet's front door.
///
/// # Errors
///
/// [`FleetError::Quarantine`] when any cell exhausted its retries (the
/// rest of the sweep completes first), [`FleetError::Io`] when the
/// results directory fails.
pub fn run_fleet(cells: &[SweepCell], opts: &FleetOptions) -> Result<FleetOutcome, FleetError> {
    let digests: Vec<u64> =
        cells.iter().map(|c| run_digest(&c.scenario, &c.kind, c.seed)).collect();
    let mut sched = Scheduler::new(cells.len(), opts.workers, opts.sched);
    let mut collected: HashMap<usize, RunMetrics> = HashMap::new();

    // Resume: scan the results directory for cells already completed by a
    // previous (possibly killed) coordinator.
    for (i, digest) in digests.iter().enumerate() {
        if let Some(metrics) = results::load(&opts.results_dir, *digest) {
            sched.mark_done_upfront(i);
            collected.insert(i, metrics);
        }
    }
    let resumed = collected.len();
    if resumed > 0 {
        eprintln!(
            "fleet: resumed {resumed}/{} cells from {}",
            cells.len(),
            opts.results_dir.display()
        );
    }
    if sched.is_complete() {
        return finish(sched, collected, cells);
    }

    // Series shipping and affinity: cells sharing a `(prepare_digest,
    // seed)` need the same prepared series, so the coordinator compiles
    // each distinct package once, ships it in the job frame (inline or
    // spilled), and asks the scheduler to route repeat keys back to a
    // worker already holding the materialized series. `SB_FLEET_NO_SHIP=1`
    // disables shipping (workers rebuild locally) — the escape hatch CI
    // byte-diffs against, since shipping must never change results.
    let affinity: Vec<u64> = cells
        .iter()
        .map(|c| {
            let mut w = sb_wire::Writer::new();
            w.u64(prepare_digest(&c.scenario));
            w.u64(c.seed);
            sb_wire::checksum(&w.into_bytes())
        })
        .collect();
    sched.set_affinity(affinity.clone());
    let no_ship = std::env::var_os("SB_FLEET_NO_SHIP").is_some_and(|v| v != "0");
    let mut shipments: HashMap<u64, Option<SeriesShipment>> = HashMap::new();
    if no_ship {
        eprintln!("fleet: SB_FLEET_NO_SHIP set; workers rebuild every series locally");
    } else {
        let compile_start = Instant::now();
        let mut wire_bytes = 0usize;
        for (i, c) in cells.iter().enumerate() {
            if *sched.cell_status(i) == CellStatus::Done || shipments.contains_key(&affinity[i]) {
                continue; // resumed cell, or package already compiled
            }
            let bytes = sb_sim::engine::compile_series_package(&c.scenario, c.seed).encode();
            let digest = sb_wire::checksum(&bytes);
            wire_bytes += bytes.len();
            let ship = if bytes.len() <= INLINE_SHIP_MAX_BYTES {
                Some(SeriesShipment::Inline(bytes))
            } else {
                match results::store_series(&opts.results_dir, digest, &bytes) {
                    Ok(path) => Some(SeriesShipment::Spill {
                        path: path.to_string_lossy().into_owned(),
                        digest,
                    }),
                    Err(e) => {
                        eprintln!(
                            "fleet: cannot spill series {digest:016x} ({e}); shipping nothing for this key"
                        );
                        None
                    }
                }
            };
            shipments.insert(affinity[i], ship);
        }
        eprintln!(
            "fleet: compiled {} series package(s), {} wire bytes, in {} ms",
            shipments.len(),
            wire_bytes,
            compile_start.elapsed().as_millis()
        );
    }

    // Spawn the fleet. Any spawn failure degrades the whole sweep to
    // in-process execution — the results are identical, only isolation
    // and parallelism are lost.
    let worker_bin = opts.worker_bin.clone().unwrap_or_else(|| {
        std::env::current_exe()
            .map(|p| p.with_file_name("sb-fleet-worker"))
            .unwrap_or_else(|_| PathBuf::from("sb-fleet-worker"))
    });
    let (tx, rx) = mpsc::channel::<Event>();
    let mut procs: Vec<WorkerProc> = Vec::with_capacity(opts.workers);
    for slot in 0..opts.workers {
        match spawn_worker(&worker_bin, slot, 0, &tx) {
            Ok(p) => procs.push(p),
            Err(e) => {
                eprintln!(
                    "fleet: cannot spawn worker `{}` ({e}); degrading to in-process execution",
                    worker_bin.display()
                );
                for mut p in procs {
                    let _ = p.child.kill();
                    let _ = p.child.wait();
                }
                return run_in_process(cells, &digests, opts, collected);
            }
        }
    }

    let start = Instant::now();
    let now_ms = |t: Instant| t.elapsed().as_millis() as u64;
    let mut completed_this_session = 0usize;
    let mut halted = false;

    'main: loop {
        let now = now_ms(start);
        for action in sched.tick(now) {
            match action {
                Action::Dispatch { worker, cell, attempt } => {
                    let c = &cells[cell];
                    let spec = CellSpec {
                        label: c.label.clone(),
                        scenario: c.scenario.clone(),
                        kind: c.kind,
                        seed: c.seed,
                        digest: digests[cell],
                        quote_threads: opts.quote_threads,
                        build_threads: opts.build_threads,
                        search: opts.search,
                        chaos: opts.chaos.worker_chaos(cell, attempt),
                        ship: shipments.get(&affinity[cell]).cloned().flatten(),
                    };
                    let msg = JobMsg::Run { job: cell as u64, spec: Box::new(spec) };
                    if let Some(stdin) = procs[worker].stdin.as_mut() {
                        // A write failure means the worker is dying; its
                        // Dead event will reschedule the cell.
                        let _ = send_job(stdin, &msg);
                    }
                }
                Action::KillWorker { worker } => {
                    eprintln!(
                        "fleet: worker {worker} missed its heartbeat deadline; killing and respawning"
                    );
                    let _ = procs[worker].child.kill();
                    let _ = procs[worker].child.wait();
                    let tail = procs[worker].tail();
                    sched.on_worker_dead(worker, &tail, now);
                    respawn(&mut procs, worker, &worker_bin, &tx);
                }
            }
        }
        if sched.is_complete() || halted {
            break 'main;
        }

        let timeout =
            sched.next_deadline(now).map(|d| d.saturating_sub(now)).unwrap_or(200).clamp(10, 500);
        let event = match rx.recv_timeout(std::time::Duration::from_millis(timeout)) {
            Ok(e) => e,
            Err(mpsc::RecvTimeoutError::Timeout) => continue,
            Err(mpsc::RecvTimeoutError::Disconnected) => break 'main,
        };
        let now = now_ms(start);
        match event {
            Event::Msg { slot, gen, msg } => {
                if procs[slot].gen != gen {
                    continue; // a superseded worker's last words
                }
                match msg {
                    WorkerMsg::Ready { proto, .. } => {
                        if proto == crate::proto::PROTO_VERSION {
                            sched.on_worker_ready(slot, now);
                        } else {
                            eprintln!(
                                "fleet: worker {slot} speaks protocol v{proto}, expected v{}; killing",
                                crate::proto::PROTO_VERSION
                            );
                            let _ = procs[slot].child.kill();
                        }
                    }
                    WorkerMsg::Heartbeat { .. } => sched.on_heartbeat(slot, now),
                    WorkerMsg::Done { job, digest, metrics } => {
                        let cell = job as usize;
                        if cell >= cells.len() || digest != digests[cell] {
                            sched.on_failed(
                                slot,
                                cell.min(cells.len() - 1),
                                "worker returned a foreign digest",
                                now,
                            );
                            continue;
                        }
                        // Durability before acknowledgment: the result
                        // file is fsynced and renamed into place before
                        // the scheduler treats the cell as done.
                        results::store(&opts.results_dir, digest, &metrics).map_err(|source| {
                            FleetError::Io { path: opts.results_dir.clone(), source }
                        })?;
                        if sched.on_done(slot, cell, now) {
                            collected.insert(cell, *metrics);
                            completed_this_session += 1;
                            if opts.chaos.exit_after == Some(completed_this_session) {
                                eprintln!(
                                    "fleet: chaos exit:after={completed_this_session} — simulating a coordinator crash"
                                );
                                halted = true;
                            }
                        }
                    }
                    WorkerMsg::Failed { job, detail } => {
                        eprintln!("fleet: worker {slot} failed cell {job}: {detail}");
                        sched.on_failed(slot, job as usize, &detail, now);
                    }
                }
            }
            Event::Dead { slot, gen } => {
                if procs[slot].gen != gen {
                    continue;
                }
                let _ = procs[slot].child.wait();
                let tail = procs[slot].tail();
                eprintln!("fleet: worker {slot} died{}", summarize_tail(&tail));
                sched.on_worker_dead(slot, &tail, now);
                respawn(&mut procs, slot, &worker_bin, &tx);
                if !sched.any_worker_alive() && !worker_respawn_possible(&procs, slot) {
                    // Every slot failed to respawn: finish in-process.
                    eprintln!("fleet: no workers left; degrading to in-process execution");
                    return run_in_process(cells, &digests, opts, collected);
                }
            }
        }
    }

    // Drain: ask politely, then make sure.
    for p in &mut procs {
        if let Some(stdin) = p.stdin.as_mut() {
            let _ = send_job(stdin, &JobMsg::Shutdown);
        }
        p.stdin = None; // close the pipe: EOF is also a shutdown
    }
    for p in &mut procs {
        let _ = p.child.kill();
        let _ = p.child.wait();
    }

    let (hits, misses) = sched.affinity_stats();
    if hits + misses > 0 {
        eprintln!("fleet: series affinity routed {hits} of {} dispatch(es) warm", hits + misses);
    }

    if halted {
        return Ok(FleetOutcome::Halted { completed_this_session });
    }
    finish(sched, collected, cells)
}

/// Whether the given slot currently holds a live (respawned) process.
fn worker_respawn_possible(procs: &[WorkerProc], slot: usize) -> bool {
    procs[slot].stdin.is_some()
}

fn summarize_tail(tail: &str) -> String {
    match tail.lines().last() {
        Some(last) if !last.trim().is_empty() => format!(" (stderr: {})", last.trim()),
        _ => String::new(),
    }
}

fn respawn(procs: &mut [WorkerProc], slot: usize, bin: &std::path::Path, tx: &mpsc::Sender<Event>) {
    let gen = procs[slot].gen + 1;
    match spawn_worker(bin, slot, gen, tx) {
        Ok(p) => procs[slot] = p,
        Err(e) => {
            eprintln!("fleet: cannot respawn worker {slot}: {e}");
            // The slot stays dead (stdin None marks it); the scheduler
            // simply never gets a Ready for it again.
            procs[slot].gen = gen;
            procs[slot].stdin = None;
        }
    }
}

/// The degraded path: run every missing cell in-process through the same
/// execution code as the workers, with the same durability. Scripted
/// worker chaos cannot apply (there is no process to kill), but
/// `exit:after` still does.
fn run_in_process(
    cells: &[SweepCell],
    digests: &[u64],
    opts: &FleetOptions,
    mut collected: HashMap<usize, RunMetrics>,
) -> Result<FleetOutcome, FleetError> {
    let cache = PreparedCache::new(opts.build_threads);
    let mut completed_this_session = 0usize;
    for (i, c) in cells.iter().enumerate() {
        if collected.contains_key(&i) {
            continue;
        }
        let spec = CellSpec {
            label: c.label.clone(),
            scenario: c.scenario.clone(),
            kind: c.kind,
            seed: c.seed,
            digest: digests[i],
            quote_threads: opts.quote_threads,
            build_threads: opts.build_threads,
            search: opts.search,
            chaos: None,
            ship: None,
        };
        let metrics = crate::worker::run_cell_local(&spec, &cache, |_| {});
        results::store(&opts.results_dir, digests[i], &metrics)
            .map_err(|source| FleetError::Io { path: opts.results_dir.clone(), source })?;
        collected.insert(i, metrics);
        completed_this_session += 1;
        if opts.chaos.exit_after == Some(completed_this_session) {
            return Ok(FleetOutcome::Halted { completed_this_session });
        }
    }
    Ok(FleetOutcome::Completed(assemble(collected, cells.len())))
}

fn finish(
    sched: Scheduler,
    collected: HashMap<usize, RunMetrics>,
    cells: &[SweepCell],
) -> Result<FleetOutcome, FleetError> {
    let quarantined = sched.quarantined();
    if !quarantined.is_empty() {
        return Err(FleetError::Quarantine(
            quarantined
                .into_iter()
                .map(|q| QuarantineReport {
                    cell: q.cell,
                    label: cells[q.cell].label.clone(),
                    attempts: q.attempts,
                    stderr_tail: q.detail,
                })
                .collect(),
        ));
    }
    Ok(FleetOutcome::Completed(assemble(collected, cells.len())))
}

fn assemble(mut collected: HashMap<usize, RunMetrics>, n: usize) -> Vec<RunMetrics> {
    (0..n).map(|i| collected.remove(&i).expect("complete sweep is missing a cell result")).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quarantine_report_joined_tails_stay_within_the_byte_budget() {
        // 8 cells, each with the maximum per-worker tail: unbounded, the
        // joined report would be 8 × 4 KiB of stderr.
        let reports: Vec<QuarantineReport> = (0..8)
            .map(|i| QuarantineReport {
                cell: i,
                label: format!("cell{i}"),
                attempts: 3,
                stderr_tail: "x".repeat(STDERR_TAIL_BYTES),
            })
            .collect();
        let text = FleetError::Quarantine(reports).to_string();
        assert!(
            text.len() < QUARANTINE_TAIL_BUDGET_BYTES + 2048,
            "joined tails must respect the budget, got {} bytes",
            text.len()
        );
        assert!(text.contains("elided"), "the cut must be announced");
        for i in 0..8 {
            assert!(text.contains(&format!("`cell{i}`")), "every cell stays named");
        }
    }

    #[test]
    fn quarantine_tail_clipping_respects_char_boundaries() {
        // A tail of multi-byte characters whose total size exceeds the
        // budget: clipping must land on a boundary, never panic.
        let reports = vec![QuarantineReport {
            cell: 0,
            label: "utf8".into(),
            attempts: 1,
            stderr_tail: "é".repeat(QUARANTINE_TAIL_BUDGET_BYTES),
        }];
        let text = FleetError::Quarantine(reports).to_string();
        assert!(text.contains("elided"));
        assert!(text.len() < QUARANTINE_TAIL_BUDGET_BYTES + 1024);
    }

    #[test]
    fn clip_utf8_is_exact_on_boundaries() {
        assert_eq!(clip_utf8("abcdef", 6), "abcdef");
        assert_eq!(clip_utf8("abcdef", 3), "abc");
        assert_eq!(clip_utf8("ééé", 3), "é", "2-byte chars cut down, not through");
        assert_eq!(clip_utf8("ééé", 0), "");
    }
}
