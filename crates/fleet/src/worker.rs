//! The fleet worker: one process, one cell at a time.
//!
//! Jobs arrive as framed [`JobMsg`]s on stdin; heartbeats and results go
//! back as framed [`WorkerMsg`]s on stdout. The run itself steps the
//! engine slot by slot ([`sb_sim::engine::EngineCore`]) and emits a
//! heartbeat after every slot boundary — liveness reflects *progress*,
//! not mere process existence, which is what lets the coordinator tell a
//! hung worker from a slow one.
//!
//! The same cell-execution path ([`run_cell_local`]) backs the
//! coordinator's in-process degradation mode, so a sweep that cannot
//! spawn processes still computes the identical bytes.

use crate::proto::{
    send_worker_msg, CellSpec, FrameReader, JobMsg, NextFrame, SeriesShipment, WorkerChaos,
    WorkerMsg, PROTO_VERSION,
};
use crate::results;
use sb_sim::engine::{EngineCore, PreparedNetwork};
use sb_sim::{PreparedCache, RunMetrics};
use sb_topology::{SeriesPackage, TopologySeries};
use std::collections::HashMap;
use std::io::{Read, Write};
use std::sync::Arc;

/// Distinct shipped series a worker keeps materialized at once. Affinity
/// routing concentrates a worker on few keys; past the cap the cache is
/// simply dropped (correctness never depends on it).
const SHIP_CACHE_CAP: usize = 8;

/// Materialized shipped series, keyed by package digest — one decode and
/// one materialization per series per worker process, however many cells
/// the coordinator routes here for it.
#[derive(Debug, Default)]
pub struct ShipCache {
    series: HashMap<u64, Arc<TopologySeries>>,
}

impl ShipCache {
    /// Distinct series currently held.
    pub fn len(&self) -> usize {
        self.series.len()
    }

    /// Whether nothing is held yet.
    pub fn is_empty(&self) -> bool {
        self.series.is_empty()
    }
}

/// Resolves one shipment to its materialized series, through the cache.
/// Any failure — unreadable spill, corrupt bytes, violated invariants —
/// returns `None`: a shipment is an optimization hint, and the caller
/// falls back to the bit-identical local rebuild.
fn shipped_series(ship: &SeriesShipment, ships: &mut ShipCache) -> Option<Arc<TopologySeries>> {
    let digest = ship.digest();
    if let Some(series) = ships.series.get(&digest) {
        return Some(Arc::clone(series));
    }
    let bytes = match ship {
        SeriesShipment::Inline(bytes) => std::borrow::Cow::Borrowed(bytes.as_slice()),
        SeriesShipment::Spill { path, digest } => {
            std::borrow::Cow::Owned(results::load_series(std::path::Path::new(path), *digest)?)
        }
    };
    let package = SeriesPackage::decode(&bytes).ok()?;
    let series = Arc::new(package.materialize().ok()?);
    if ships.series.len() >= SHIP_CACHE_CAP {
        ships.series.clear();
    }
    ships.series.insert(digest, Arc::clone(&series));
    Some(series)
}

/// The prepared network for a cell: materialized from the attached
/// shipment when it loads cleanly, rebuilt locally otherwise. Both paths
/// produce bit-identical networks (proven by the engine's shipped-series
/// proptests), so the choice never shows in the results.
fn prepared_for(
    spec: &CellSpec,
    cache: &PreparedCache,
    ships: &mut ShipCache,
) -> Arc<PreparedNetwork> {
    if let Some(ship) = &spec.ship {
        if let Some(series) = shipped_series(ship, ships) {
            return Arc::new(sb_sim::engine::prepare_from_series(
                &spec.scenario,
                spec.seed,
                &series,
            ));
        }
        eprintln!("worker: shipment for cell `{}` unusable; rebuilding locally", spec.label);
    }
    cache.get(&spec.scenario, spec.seed)
}

/// [`run_cell`] without a ship cache — the coordinator's in-process
/// degradation path, which never attaches shipments.
pub fn run_cell_local(
    spec: &CellSpec,
    cache: &PreparedCache,
    heartbeat: impl FnMut(u32),
) -> RunMetrics {
    run_cell(spec, cache, &mut ShipCache::default(), heartbeat)
}

/// Runs one cell to completion, invoking `heartbeat(slots_done)` after
/// every slot boundary and honoring the spec's scripted chaos.
///
/// Chaos actions are taken *before* executing their trigger slot, so a
/// `KillAtSlot(3)` dies with slots 0–2 done and slot 3 not yet run —
/// mid-cell by construction.
pub fn run_cell(
    spec: &CellSpec,
    cache: &PreparedCache,
    ships: &mut ShipCache,
    mut heartbeat: impl FnMut(u32),
) -> RunMetrics {
    let prepared = prepared_for(spec, cache, ships);
    let requests = sb_sim::engine::workload(&spec.scenario, &prepared, spec.seed);
    let mut algorithm = spec.kind.instantiate_exec(&sb_sim::ExecOptions {
        quote_threads: spec.quote_threads,
        search: spec.search,
    });
    let mut core = EngineCore::new(&spec.scenario, &prepared, &requests, spec.seed);
    while !core.is_complete() {
        match spec.chaos {
            Some(WorkerChaos::KillAtSlot(s)) if core.next_slot() as u32 >= s => {
                // SIGABRT, no unwinding, no cleanup: to the coordinator
                // this is indistinguishable from `kill -9` mid-cell.
                eprintln!(
                    "chaos: aborting worker at slot {} of cell `{}`",
                    core.next_slot(),
                    spec.label
                );
                std::process::abort();
            }
            Some(WorkerChaos::HangAtSlot(s)) if core.next_slot() as u32 >= s => {
                // A silent hang: no heartbeats, no progress, no exit.
                // Only the coordinator's hard deadline recovers this.
                eprintln!(
                    "chaos: hanging worker at slot {} of cell `{}`",
                    core.next_slot(),
                    spec.label
                );
                loop {
                    std::thread::sleep(std::time::Duration::from_millis(250));
                }
            }
            _ => {}
        }
        core.step_slot(algorithm.as_mut());
        heartbeat(core.next_slot() as u32);
    }
    core.drain_final(algorithm.as_mut());
    core.finalize(algorithm.as_ref())
}

/// The worker main loop. Returns cleanly on `Shutdown` or stdin EOF;
/// corrupt input is fatal (a byte pipe cannot be resynchronized).
///
/// # Errors
///
/// Returns the message on protocol corruption or I/O failure; the binary
/// exits nonzero with it on stderr, which the coordinator records as the
/// death evidence.
pub fn worker_main(stdin: impl Read, stdout: impl Write) -> Result<(), String> {
    let mut reader = FrameReader::new(stdin);
    let mut out = stdout;
    send_worker_msg(&mut out, &WorkerMsg::Ready { pid: std::process::id(), proto: PROTO_VERSION })
        .map_err(|e| format!("cannot greet coordinator: {e}"))?;
    // One worker serves many cells of one sweep; reuse prepared networks
    // across them exactly like the in-process runner does, and keep
    // shipped series materialized so affinity-routed cells pay for the
    // decode once.
    let mut cache: Option<(usize, PreparedCache)> = None;
    let mut ships = ShipCache::default();
    loop {
        let payload = match reader.next_frame().map_err(|e| format!("stdin read failed: {e}"))? {
            NextFrame::Payload(p) => p,
            NextFrame::Eof => return Ok(()), // coordinator went away
            NextFrame::Corrupt => return Err("corrupt job frame on stdin".into()),
        };
        let msg = JobMsg::decode(&payload).map_err(|e| format!("undecodable job: {e}"))?;
        let (job, spec) = match msg {
            JobMsg::Shutdown => return Ok(()),
            JobMsg::Run { job, spec } => (job, spec),
        };
        // Rebuild the cache if the build-thread setting changed (it is
        // constant within one sweep; this is belt and braces).
        if !matches!(&cache, Some((threads, _)) if *threads == spec.build_threads) {
            cache = Some((spec.build_threads, PreparedCache::new(spec.build_threads)));
        }
        let cache = &cache.as_ref().expect("cache set above").1;
        send_worker_msg(&mut out, &WorkerMsg::Heartbeat { job, slot: 0 })
            .map_err(|e| format!("heartbeat write failed: {e}"))?;
        let mut beat_err = None;
        let metrics = run_cell(&spec, cache, &mut ships, |slot| {
            if beat_err.is_none() {
                beat_err = send_worker_msg(&mut out, &WorkerMsg::Heartbeat { job, slot }).err();
            }
        });
        if let Some(e) = beat_err {
            return Err(format!("heartbeat write failed: {e}"));
        }
        send_worker_msg(
            &mut out,
            &WorkerMsg::Done { job, digest: spec.digest, metrics: Box::new(metrics) },
        )
        .map_err(|e| format!("result write failed: {e}"))?;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sb_sim::engine::{run_digest, AlgorithmKind};
    use sb_sim::ScenarioConfig;

    fn spec(seed: u64) -> CellSpec {
        let scenario = ScenarioConfig::tiny();
        let kind = AlgorithmKind::Ssp;
        CellSpec {
            label: format!("tiny-ssp-s{seed}"),
            digest: run_digest(&scenario, &kind, seed),
            scenario,
            kind,
            seed,
            quote_threads: 1,
            build_threads: 1,
            search: sb_sim::SearchKind::default(),
            chaos: None,
            ship: None,
        }
    }

    fn shipment_for(spec: &CellSpec) -> SeriesShipment {
        let package = sb_sim::engine::compile_series_package(&spec.scenario, spec.seed);
        SeriesShipment::Inline(package.encode())
    }

    #[test]
    fn shipped_cell_matches_local_rebuild_and_caches_the_series() {
        let local = spec(5);
        let mut shipped = spec(5);
        shipped.ship = Some(shipment_for(&shipped));

        let cache = PreparedCache::with_disabled(1, false);
        let mut ships = ShipCache::default();
        let mut from_ship = run_cell(&shipped, &cache, &mut ships, |_| {});
        assert_eq!(ships.len(), 1, "the materialized series must be cached");
        assert!(cache.is_empty(), "a usable shipment must bypass the local build");
        let mut from_local = run_cell_local(&local, &cache, |_| {});
        from_ship.processing_ms = 0;
        from_local.processing_ms = 0;
        assert_eq!(from_ship, from_local, "shipped preparation must be bit-identical");

        // A second cell on the same series decodes nothing new.
        let mut again = spec(5);
        again.ship = shipped.ship.clone();
        run_cell(&again, &cache, &mut ships, |_| {});
        assert_eq!(ships.len(), 1);
    }

    #[test]
    fn unusable_shipment_falls_back_to_local_rebuild() {
        let reference = run_cell_local(&spec(4), &PreparedCache::with_disabled(1, false), |_| {});
        let corrupt = [
            SeriesShipment::Inline(vec![0xff; 48]),
            SeriesShipment::Spill { path: "/nonexistent/series.bin".into(), digest: 1 },
        ];
        for ship in corrupt {
            let mut s = spec(4);
            s.ship = Some(ship);
            let mut ships = ShipCache::default();
            let mut got = run_cell(&s, &PreparedCache::with_disabled(1, false), &mut ships, |_| {});
            assert!(ships.is_empty(), "garbage must not be cached");
            let mut want = reference.clone();
            got.processing_ms = 0;
            want.processing_ms = 0;
            assert_eq!(got, want, "fallback must still compute the exact result");
        }
    }

    #[test]
    fn local_run_matches_engine_and_heartbeats_every_slot() {
        let s = spec(3);
        let cache = PreparedCache::with_disabled(1, false);
        let mut beats = Vec::new();
        let mut ours = run_cell_local(&s, &cache, |slot| beats.push(slot));
        let prepared = sb_sim::engine::prepare(&s.scenario, s.seed);
        let requests = sb_sim::engine::workload(&s.scenario, &prepared, s.seed);
        let mut reference =
            sb_sim::engine::run_prepared(&s.scenario, &prepared, &requests, &s.kind, s.seed);
        ours.processing_ms = 0;
        reference.processing_ms = 0;
        assert_eq!(ours, reference, "fleet-local run must be bit-identical to the engine");
        let expected: Vec<u32> = (1..=s.scenario.horizon_slots as u32).collect();
        assert_eq!(beats, expected, "one heartbeat per completed slot");
    }

    #[test]
    fn worker_loop_serves_jobs_over_pipes() {
        // Drive the worker loop through in-memory pipes: two jobs, then
        // shutdown; expect Ready, per-slot heartbeats and two Dones.
        let mut input = Vec::new();
        for (job, seed) in [(0u64, 1u64), (1, 2)] {
            let msg = JobMsg::Run { job, spec: Box::new(spec(seed)) };
            let mut w = sb_wire::Writer::new();
            msg.encode(&mut w);
            sb_wire::frame::write_frame(&mut input, &w.into_bytes());
        }
        let mut w = sb_wire::Writer::new();
        JobMsg::Shutdown.encode(&mut w);
        sb_wire::frame::write_frame(&mut input, &w.into_bytes());

        let mut output = Vec::new();
        worker_main(std::io::Cursor::new(input), &mut output).unwrap();

        let mut reader = FrameReader::new(std::io::Cursor::new(output));
        let mut msgs = Vec::new();
        while let NextFrame::Payload(p) = reader.next_frame().unwrap() {
            msgs.push(WorkerMsg::decode(&p).unwrap());
        }
        assert!(
            matches!(msgs[0], WorkerMsg::Ready { proto: PROTO_VERSION, .. }),
            "first message must be the greeting"
        );
        let dones: Vec<_> = msgs
            .iter()
            .filter_map(|m| match m {
                WorkerMsg::Done { job, digest, metrics } => Some((*job, *digest, metrics.clone())),
                _ => None,
            })
            .collect();
        assert_eq!(dones.len(), 2);
        assert_eq!((dones[0].0, dones[1].0), (0, 1));
        assert_eq!(dones[0].1, spec(1).digest);
        // Heartbeats cover both jobs, slot 0 (accepted) through horizon.
        let horizon = ScenarioConfig::tiny().horizon_slots as u32;
        for job in 0..2u64 {
            let beats: Vec<u32> = msgs
                .iter()
                .filter_map(|m| match m {
                    WorkerMsg::Heartbeat { job: j, slot } if *j == job => Some(*slot),
                    _ => None,
                })
                .collect();
            assert_eq!(beats, (0..=horizon).collect::<Vec<_>>(), "job {job}");
        }
    }

    #[test]
    fn worker_rejects_corrupt_input() {
        let err = worker_main(std::io::Cursor::new(vec![0xff; 64]), Vec::new()).unwrap_err();
        assert!(err.contains("corrupt"), "got: {err}");
    }
}
