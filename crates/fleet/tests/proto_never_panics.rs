//! The job-protocol decoders must return `WireError` on any input —
//! truncated, bit-flipped or pure noise — and never panic. A panicking
//! decoder would let one corrupt pipe byte take down the coordinator the
//! whole design exists to keep alive.
//!
//! Two layers: plain `#[test]` seeded-fuzz versions that run everywhere
//! (exhaustive truncations, deterministic bit flips, random noise), and
//! `proptest!` versions for richer exploration where the real proptest
//! crate is available.

use sb_fleet::proto::{CellSpec, FrameReader, JobMsg, WorkerMsg};
use sb_sim::engine::{run, run_digest, AlgorithmKind};
use sb_sim::ScenarioConfig;
use sb_wire::{Reader, Writer};

fn sample_spec() -> CellSpec {
    let scenario = ScenarioConfig::tiny();
    let kind = AlgorithmKind::Cear(scenario.cear);
    CellSpec {
        label: "fuzz-cell".into(),
        digest: run_digest(&scenario, &kind, 7),
        scenario,
        kind,
        seed: 7,
        quote_threads: 2,
        build_threads: 3,
        search: sb_sim::SearchKind::Astar,
        chaos: Some(sb_fleet::proto::WorkerChaos::KillAtSlot(4)),
        ship: Some(sb_fleet::proto::SeriesShipment::Spill {
            path: "/tmp/series_0123.bin".into(),
            digest: 0x0123_4567_89ab_cdef,
        }),
    }
}

/// Every valid payload the protocol can produce, as raw bytes.
fn corpus() -> Vec<Vec<u8>> {
    let mut payloads = Vec::new();
    let mut push = |f: &dyn Fn(&mut Writer)| {
        let mut w = Writer::new();
        f(&mut w);
        payloads.push(w.into_bytes());
    };
    push(&|w| JobMsg::Run { job: 3, spec: Box::new(sample_spec()) }.encode(w));
    push(&|w| JobMsg::Shutdown.encode(w));
    push(&|w| WorkerMsg::Ready { pid: 1234, proto: 1 }.encode(w));
    push(&|w| WorkerMsg::Heartbeat { job: 3, slot: 17 }.encode(w));
    let metrics = run(&ScenarioConfig::tiny(), &AlgorithmKind::Ssp, 1);
    push(&|w| {
        WorkerMsg::Done { job: 3, digest: 0xabcd, metrics: Box::new(metrics.clone()) }.encode(w)
    });
    push(&|w| WorkerMsg::Failed { job: 3, detail: "engine exploded".into() }.encode(w));
    push(&|w| sample_spec().encode(w));
    payloads
}

/// Throws `bytes` at every decoder; the only requirement is "no panic".
fn decode_all(bytes: &[u8]) {
    let _ = JobMsg::decode(bytes);
    let _ = WorkerMsg::decode(bytes);
    let _ = CellSpec::decode(&mut Reader::new(bytes));
    // The framing layer must survive the same garbage.
    let mut frames = FrameReader::new(std::io::Cursor::new(bytes.to_vec()));
    while let Ok(sb_fleet::proto::NextFrame::Payload(_)) = frames.next_frame() {}
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[test]
fn every_truncation_of_every_message_is_rejected_not_panicked() {
    for payload in corpus() {
        for cut in 0..payload.len() {
            decode_all(&payload[..cut]);
        }
    }
}

#[test]
fn seeded_bit_flips_never_panic_any_decoder() {
    let mut rng = 0x5eed_f1ee_u64;
    for payload in corpus() {
        for _ in 0..200 {
            let mut bytes = payload.clone();
            // Flip 1–4 bits at seeded positions.
            let flips = 1 + (splitmix64(&mut rng) % 4) as usize;
            for _ in 0..flips {
                let bit = (splitmix64(&mut rng) as usize) % (bytes.len() * 8);
                bytes[bit / 8] ^= 1 << (bit % 8);
            }
            decode_all(&bytes);
        }
    }
}

#[test]
fn random_noise_never_panics_any_decoder() {
    let mut rng = 0xbad_cafe_u64;
    for len in [0usize, 1, 2, 7, 12, 64, 512, 4096] {
        for _ in 0..50 {
            let bytes: Vec<u8> = (0..len).map(|_| (splitmix64(&mut rng) & 0xff) as u8).collect();
            decode_all(&bytes);
        }
    }
}

#[test]
fn valid_reencodings_still_roundtrip_after_the_fuzz_suite() {
    // Sanity anchor: the corpus entries themselves decode fine, so the
    // fuzz tests above exercise real reject paths, not a broken corpus.
    let payloads = corpus();
    assert!(matches!(JobMsg::decode(&payloads[0]), Ok(JobMsg::Run { job: 3, .. })));
    assert!(matches!(JobMsg::decode(&payloads[1]), Ok(JobMsg::Shutdown)));
    assert!(matches!(WorkerMsg::decode(&payloads[2]), Ok(WorkerMsg::Ready { pid: 1234, .. })));
    assert!(CellSpec::decode(&mut Reader::new(&payloads[6])).is_ok());
}

// Property-test layer: explores arbitrary byte soup and arbitrary cut
// points. With the offline proptest stub these compile but stay inert;
// under the real crate (networked CI) they fuzz for real.
mod prop {
    // Used by the expanded proptest! bodies; an inert stub leaves it unused.
    #[allow(unused_imports)]
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #[test]
        fn arbitrary_bytes_never_panic(bytes in proptest::collection::vec(any::<u8>(), 0..2048)) {
            decode_all(&bytes);
        }

        #[test]
        fn arbitrary_mutations_of_valid_messages_never_panic(
            idx in 0usize..7,
            cut in any::<u16>(),
            flip in any::<u64>(),
        ) {
            let corpus = corpus();
            let payload = &corpus[idx % corpus.len()];
            let mut bytes = payload[..(cut as usize) % (payload.len() + 1)].to_vec();
            if !bytes.is_empty() {
                let bit = (flip as usize) % (bytes.len() * 8);
                bytes[bit / 8] ^= 1 << (bit % 8);
            }
            decode_all(&bytes);
        }
    }
}
