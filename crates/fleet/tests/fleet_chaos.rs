//! End-to-end chaos tests for the fleet coordinator: real worker
//! processes, scripted kills and hangs, coordinator crash-and-resume —
//! and the headline invariant that the final metrics are bit-identical
//! to an uninterrupted in-process run through it all.

use sb_fleet::chaos::ChaosPlan;
use sb_fleet::coordinator::{run_fleet, FleetError, FleetOptions, FleetOutcome};
use sb_fleet::proto::CellSpec;
use sb_fleet::worker::run_cell_local;
use sb_fleet::SweepCell;
use sb_sim::engine::{run_digest, AlgorithmKind};
use sb_sim::{PreparedCache, RunMetrics, ScenarioConfig};
use std::path::PathBuf;

/// The worker binary Cargo built for this test run.
fn worker_bin() -> PathBuf {
    PathBuf::from(env!("CARGO_BIN_EXE_sb-fleet-worker"))
}

/// A small but non-trivial sweep: two algorithms × three seeds on the
/// tiny scenario (24 slots), so kills at slot 1–2 are genuinely mid-cell.
fn sweep() -> Vec<SweepCell> {
    let scenario = ScenarioConfig::tiny();
    let mut cells = Vec::new();
    for kind in [AlgorithmKind::Ssp, AlgorithmKind::Ecars] {
        for seed in 0..3 {
            cells.push(SweepCell {
                label: format!("{}-s{seed}", kind.name()),
                scenario: scenario.clone(),
                kind,
                seed,
            });
        }
    }
    cells
}

/// The uninterrupted in-process reference for a sweep, computed through
/// the exact engine path the workers use.
fn reference(cells: &[SweepCell]) -> Vec<RunMetrics> {
    let cache = PreparedCache::new(1);
    cells
        .iter()
        .map(|c| {
            let spec = CellSpec {
                label: c.label.clone(),
                scenario: c.scenario.clone(),
                kind: c.kind,
                seed: c.seed,
                digest: run_digest(&c.scenario, &c.kind, c.seed),
                quote_threads: 1,
                build_threads: 1,
                search: sb_sim::SearchKind::default(),
                chaos: None,
                ship: None,
            };
            normalized(run_cell_local(&spec, &cache, |_| {}))
        })
        .collect()
}

/// Wall-clock timing is the one legitimately nondeterministic metric;
/// zero it so equality means "every simulated quantity is bit-identical".
fn normalized(mut m: RunMetrics) -> RunMetrics {
    m.processing_ms = 0;
    m
}

fn opts(tag: &str, workers: usize) -> FleetOptions {
    let dir = std::env::temp_dir().join(format!("sb_fleet_chaos_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let mut o = FleetOptions::new(workers, dir);
    o.worker_bin = Some(worker_bin());
    // Tight deadlines keep the hang-recovery test fast; heartbeats come
    // every slot (milliseconds apart), so these are still generous.
    o.sched.soft_timeout_ms = 500;
    o.sched.hard_timeout_ms = 2_000;
    o.sched.backoff_base_ms = 10;
    o.sched.backoff_cap_ms = 100;
    o
}

fn cleanup(o: &FleetOptions) {
    let _ = std::fs::remove_dir_all(&o.results_dir);
}

#[test]
fn clean_fleet_matches_in_process_reference() {
    let cells = sweep();
    let o = opts("clean", 3);
    let got = match run_fleet(&cells, &o).expect("clean fleet run") {
        FleetOutcome::Completed(m) => m,
        other => panic!("expected completion, got {other:?}"),
    };
    let got: Vec<_> = got.into_iter().map(normalized).collect();
    assert_eq!(got, reference(&cells), "fleet metrics must be bit-identical");
    cleanup(&o);
}

#[test]
fn scripted_kills_and_hangs_do_not_change_a_single_bit() {
    let cells = sweep();
    let mut o = opts("killhang", 2);
    // Cell 1 SIGABRTs its worker at slot 2; cell 3 hangs silently (only
    // the hard heartbeat deadline recovers that one). Both retry clean.
    o.chaos = ChaosPlan::parse("kill:cell=1,slot=2;hang:cell=3").unwrap();
    let got = match run_fleet(&cells, &o).expect("chaotic fleet run") {
        FleetOutcome::Completed(m) => m,
        other => panic!("expected completion, got {other:?}"),
    };
    let got: Vec<_> = got.into_iter().map(normalized).collect();
    assert_eq!(got, reference(&cells), "kills and hangs must not perturb results");
    cleanup(&o);
}

#[test]
fn coordinator_killed_mid_sweep_resumes_to_identical_results() {
    let cells = sweep();
    let mut o = opts("resume", 2);
    // Scripted coordinator crash after 2 durable cells, with a worker
    // kill thrown in for good measure.
    o.chaos = ChaosPlan::parse("kill:cell=0,slot=1;exit:after=2").unwrap();
    match run_fleet(&cells, &o).expect("halting run") {
        FleetOutcome::Halted { completed_this_session } => {
            assert_eq!(completed_this_session, 2, "halt honors the scripted point");
        }
        other => panic!("expected a scripted halt, got {other:?}"),
    }
    // Between 1 and 5 cell files exist (2 acked + possibly in-flight).
    let files = std::fs::read_dir(&o.results_dir).map(|d| d.count()).unwrap_or(0);
    assert!(files >= 2, "at least the acked cells are durable, found {files}");

    // The rerun resumes from the durable directory and finishes the rest.
    o.chaos = ChaosPlan::default();
    let got = match run_fleet(&cells, &o).expect("resumed run") {
        FleetOutcome::Completed(m) => m,
        other => panic!("expected completion, got {other:?}"),
    };
    let got: Vec<_> = got.into_iter().map(normalized).collect();
    assert_eq!(got, reference(&cells), "kill-and-resume must be invisible in the results");
    cleanup(&o);
}

#[test]
fn poison_cell_quarantines_with_named_cell_and_stderr_tail() {
    let cells = sweep();
    let mut o = opts("poison", 2);
    o.sched.max_attempts = 2; // fail fast
    o.chaos = ChaosPlan::parse("poison:cell=4").unwrap();
    let err = run_fleet(&cells, &o).expect_err("poison must fail the sweep");
    let FleetError::Quarantine(report) = &err else {
        panic!("expected quarantine, got {err:?}");
    };
    assert_eq!(report.len(), 1);
    assert_eq!(report[0].cell, 4);
    assert_eq!(report[0].label, cells[4].label, "report names the cell");
    assert_eq!(report[0].attempts, 2, "full retry budget consumed");
    assert!(
        report[0].stderr_tail.contains("chaos: aborting"),
        "report carries the dead worker's stderr, got: {}",
        report[0].stderr_tail
    );
    // The rest of the sweep still completed durably before the failure
    // was raised: a rerun without poison has only cell 4 left to run.
    let done = std::fs::read_dir(&o.results_dir).map(|d| d.count()).unwrap_or(0);
    assert_eq!(done, cells.len() - 1, "all healthy cells persisted");
    cleanup(&o);
}

#[test]
fn unspawnable_worker_degrades_to_in_process_with_identical_results() {
    let cells = sweep();
    let mut o = opts("degrade", 2);
    o.worker_bin = Some(PathBuf::from("/nonexistent/sb-fleet-worker"));
    let got = match run_fleet(&cells, &o).expect("degraded run") {
        FleetOutcome::Completed(m) => m,
        other => panic!("expected completion, got {other:?}"),
    };
    let got: Vec<_> = got.into_iter().map(normalized).collect();
    assert_eq!(got, reference(&cells), "the degraded path computes the same bytes");
    cleanup(&o);
}
