//! Walker-delta constellation generation.
//!
//! A Walker delta pattern `i: t/p/f` distributes `t` satellites over `p`
//! evenly-spaced orbital planes at inclination `i`, with `t/p` satellites
//! per plane and an inter-plane phasing factor `f ∈ [0, p)`: a satellite in
//! plane `k+1` leads its plane-`k` counterpart by `f · 360°/t`.
//!
//! SpaceX Starlink Shell 1 — the topology the paper evaluates on — is
//! modelled as Walker delta 53°: 1584/22/17 at 550 km (22 planes × 72
//! satellites; the phasing factor is not public, 17 gives the familiar
//! near-uniform coverage pattern and any `f` produces the same ISL grid).

use crate::kepler::OrbitalElements;
use sb_geo::Epoch;
use serde::{Deserialize, Serialize};

/// A Walker-delta constellation specification.
///
/// # Example
///
/// ```
/// use sb_orbit::walker::WalkerConstellation;
/// // Starlink Shell 1 as used in the paper.
/// let shell = WalkerConstellation::starlink_shell1();
/// assert_eq!(shell.total_satellites(), 1584);
/// assert_eq!(shell.planes(), 22);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WalkerConstellation {
    planes: usize,
    sats_per_plane: usize,
    phasing: usize,
    altitude_m: f64,
    inclination_rad: f64,
    epoch: Epoch,
}

impl WalkerConstellation {
    /// Creates a Walker-delta specification with `planes × sats_per_plane`
    /// satellites.
    ///
    /// # Panics
    ///
    /// Panics if `planes` or `sats_per_plane` is zero, or if
    /// `phasing >= planes`.
    pub fn delta(
        planes: usize,
        sats_per_plane: usize,
        phasing: usize,
        altitude_m: f64,
        inclination_rad: f64,
    ) -> Self {
        assert!(planes > 0, "need at least one plane");
        assert!(sats_per_plane > 0, "need at least one satellite per plane");
        assert!(phasing < planes, "phasing factor must be < planes");
        WalkerConstellation {
            planes,
            sats_per_plane,
            phasing,
            altitude_m,
            inclination_rad,
            epoch: Epoch::from_seconds(0.0),
        }
    }

    /// The SpaceX Starlink Shell-1 parameters used in the paper's
    /// evaluation: 22 planes × 72 satellites, 550 km altitude, 53°
    /// inclination.
    pub fn starlink_shell1() -> Self {
        Self::delta(22, 72, 17, 550_000.0, 53f64.to_radians())
    }

    /// Number of orbital planes.
    pub fn planes(&self) -> usize {
        self.planes
    }

    /// Satellites per plane.
    pub fn sats_per_plane(&self) -> usize {
        self.sats_per_plane
    }

    /// Total satellite count.
    pub fn total_satellites(&self) -> usize {
        self.planes * self.sats_per_plane
    }

    /// Orbit altitude, meters.
    pub fn altitude_m(&self) -> f64 {
        self.altitude_m
    }

    /// Orbit inclination, radians.
    pub fn inclination_rad(&self) -> f64 {
        self.inclination_rad
    }

    /// Iterates over `(plane, slot_in_plane, elements)` for every satellite.
    ///
    /// Planes are spread uniformly over 360° of RAAN (delta pattern); the
    /// in-plane phase advances by `360°/sats_per_plane` per slot plus the
    /// Walker phasing offset between planes.
    pub fn elements(&self) -> impl Iterator<Item = (usize, usize, OrbitalElements)> + '_ {
        let tau = core::f64::consts::TAU;
        let total = self.total_satellites() as f64;
        (0..self.planes).flat_map(move |plane| {
            (0..self.sats_per_plane).map(move |slot| {
                let raan = tau * plane as f64 / self.planes as f64;
                let base_phase = tau * slot as f64 / self.sats_per_plane as f64;
                let walker_offset = tau * (self.phasing * plane) as f64 / total;
                let elements = OrbitalElements::circular(
                    self.altitude_m,
                    self.inclination_rad,
                    raan,
                    (base_phase + walker_offset).rem_euclid(tau),
                    self.epoch,
                );
                (plane, slot, elements)
            })
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use sb_geo::EARTH_RADIUS_M;

    #[test]
    fn starlink_shell1_counts() {
        let s = WalkerConstellation::starlink_shell1();
        assert_eq!(s.total_satellites(), 1584);
        assert_eq!(s.planes(), 22);
        assert_eq!(s.sats_per_plane(), 72);
        assert!((s.altitude_m() - 550e3).abs() < 1.0);
        assert!((s.inclination_rad().to_degrees() - 53.0).abs() < 1e-9);
    }

    #[test]
    fn element_count_matches() {
        let s = WalkerConstellation::delta(5, 7, 2, 600e3, 1.0);
        assert_eq!(s.elements().count(), 35);
    }

    #[test]
    fn planes_evenly_spaced_in_raan() {
        let s = WalkerConstellation::delta(4, 2, 1, 550e3, 0.9);
        let raans: Vec<f64> =
            s.elements().filter(|(_, slot, _)| *slot == 0).map(|(_, _, el)| el.raan_rad).collect();
        assert_eq!(raans.len(), 4);
        for (k, r) in raans.iter().enumerate() {
            let expected = core::f64::consts::TAU * k as f64 / 4.0;
            assert!((r - expected).abs() < 1e-12);
        }
    }

    #[test]
    fn in_plane_slots_evenly_phased() {
        let s = WalkerConstellation::delta(2, 6, 0, 550e3, 0.9);
        let phases: Vec<f64> = s
            .elements()
            .filter(|(plane, _, _)| *plane == 0)
            .map(|(_, _, el)| el.mean_anomaly_rad)
            .collect();
        for (k, m) in phases.iter().enumerate() {
            let expected = core::f64::consts::TAU * k as f64 / 6.0;
            assert!((m - expected).abs() < 1e-12);
        }
    }

    #[test]
    fn walker_phasing_offsets_planes() {
        let s = WalkerConstellation::delta(3, 4, 1, 550e3, 0.9);
        let slot0: Vec<f64> = s
            .elements()
            .filter(|(_, slot, _)| *slot == 0)
            .map(|(_, _, el)| el.mean_anomaly_rad)
            .collect();
        let expected_step = core::f64::consts::TAU / 12.0; // f·360°/t
        assert!((slot0[1] - slot0[0] - expected_step).abs() < 1e-12);
        assert!((slot0[2] - slot0[0] - 2.0 * expected_step).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "phasing factor")]
    fn invalid_phasing_panics() {
        let _ = WalkerConstellation::delta(3, 4, 3, 550e3, 0.9);
    }

    #[test]
    fn min_satellite_spacing_is_sane() {
        // In a 22×72 shell no two satellites should be closer than ~100 km
        // at epoch 0 (no collisions in the generated pattern).
        let s = WalkerConstellation::starlink_shell1();
        let pos: Vec<_> =
            s.elements().map(|(_, _, el)| el.position_at(Epoch::from_seconds(0.0)).0).collect();
        let mut min_d = f64::MAX;
        // Sample pairs rather than all 1584² for test speed.
        for i in (0..pos.len()).step_by(13) {
            for j in (i + 1..pos.len()).step_by(7) {
                min_d = min_d.min(pos[i].distance(pos[j]));
            }
        }
        assert!(min_d > 50_000.0, "min spacing {min_d}");
    }

    proptest! {
        #[test]
        fn prop_all_at_correct_radius(planes in 1usize..8, spp in 1usize..10, alt in 400e3..1500e3f64) {
            let s = WalkerConstellation::delta(planes, spp, 0, alt, 1.0);
            for (_, _, el) in s.elements() {
                let r = el.position_at(Epoch::from_seconds(0.0)).0.norm();
                prop_assert!((r - (EARTH_RADIUS_M + alt)).abs() < 1e-3);
            }
        }

        #[test]
        fn prop_phases_distinct_within_plane(spp in 2usize..20) {
            let s = WalkerConstellation::delta(2, spp, 1, 550e3, 0.9);
            let mut phases: Vec<f64> = s
                .elements()
                .filter(|(p, _, _)| *p == 0)
                .map(|(_, _, el)| el.mean_anomaly_rad)
                .collect();
            phases.sort_by(|a, b| a.partial_cmp(b).unwrap());
            for w in phases.windows(2) {
                prop_assert!(w[1] - w[0] > 1e-9);
            }
        }
    }
}
