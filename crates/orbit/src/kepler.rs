//! Classical orbital elements and two-body Keplerian propagation.
//!
//! The simulator propagates orbits with the unperturbed two-body model.
//! Perturbations (J2 precession, drag) shift orbital planes by well under a
//! degree over the paper's 6.4-hour evaluation horizon and do not change ISL
//! wiring or USL visibility statistics; DESIGN.md records this substitution
//! for SGP4.

use sb_geo::coords::Eci;
use sb_geo::{Epoch, Vec3, EARTH_MU};
use serde::{Deserialize, Serialize};

/// Maximum Newton iterations when solving Kepler's equation.
const KEPLER_MAX_ITER: usize = 30;

/// Convergence tolerance (radians) for Kepler's equation.
const KEPLER_TOL: f64 = 1e-12;

/// Classical (Keplerian) orbital elements at a reference epoch.
///
/// Angles are radians; the semi-major axis is meters. Elements are valid for
/// closed orbits (`eccentricity < 1`).
///
/// # Example
///
/// ```
/// use sb_orbit::kepler::OrbitalElements;
/// use sb_geo::{Epoch, EARTH_RADIUS_M};
///
/// let elements = OrbitalElements::circular(
///     550e3,                   // altitude
///     53f64.to_radians(),      // inclination
///     0.0,                     // RAAN
///     0.0,                     // initial phase
///     Epoch::from_seconds(0.0),
/// );
/// let p = elements.position_at(Epoch::from_seconds(0.0));
/// assert!((p.0.norm() - (EARTH_RADIUS_M + 550e3)).abs() < 1e-3);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OrbitalElements {
    /// Semi-major axis, meters.
    pub semi_major_axis_m: f64,
    /// Eccentricity, `[0, 1)`.
    pub eccentricity: f64,
    /// Inclination, radians.
    pub inclination_rad: f64,
    /// Right ascension of the ascending node, radians.
    pub raan_rad: f64,
    /// Argument of perigee, radians.
    pub arg_perigee_rad: f64,
    /// Mean anomaly at `epoch`, radians.
    pub mean_anomaly_rad: f64,
    /// Reference epoch for `mean_anomaly_rad`.
    pub epoch: Epoch,
}

impl OrbitalElements {
    /// Elements of a circular orbit at `altitude_m` above the mean Earth
    /// radius. `phase_rad` is the argument of latitude (angle from the
    /// ascending node) at `epoch`.
    pub fn circular(
        altitude_m: f64,
        inclination_rad: f64,
        raan_rad: f64,
        phase_rad: f64,
        epoch: Epoch,
    ) -> Self {
        OrbitalElements {
            semi_major_axis_m: sb_geo::EARTH_RADIUS_M + altitude_m,
            eccentricity: 0.0,
            inclination_rad,
            raan_rad,
            arg_perigee_rad: 0.0,
            mean_anomaly_rad: phase_rad,
            epoch,
        }
    }

    /// Mean motion, radians per second.
    ///
    /// # Panics
    ///
    /// Panics in debug builds when the semi-major axis is non-positive.
    pub fn mean_motion(&self) -> f64 {
        let a = self.semi_major_axis_m;
        debug_assert!(a > 0.0, "semi-major axis must be positive");
        (EARTH_MU / (a * a * a)).sqrt()
    }

    /// Orbital period, seconds.
    pub fn period(&self) -> f64 {
        core::f64::consts::TAU / self.mean_motion()
    }

    /// Mean anomaly at an arbitrary epoch, radians in `[0, 2π)`.
    pub fn mean_anomaly_at(&self, epoch: Epoch) -> f64 {
        let dt = epoch.as_seconds() - self.epoch.as_seconds();
        let m = self.mean_anomaly_rad + self.mean_motion() * dt;
        m.rem_euclid(core::f64::consts::TAU)
    }

    /// Solves Kepler's equation `M = E − e·sin E` for the eccentric anomaly
    /// by Newton iteration.
    pub fn eccentric_anomaly_at(&self, epoch: Epoch) -> f64 {
        let m = self.mean_anomaly_at(epoch);
        let e = self.eccentricity;
        if e == 0.0 {
            return m;
        }
        let mut ea = if e < 0.8 { m } else { core::f64::consts::PI };
        for _ in 0..KEPLER_MAX_ITER {
            let f = ea - e * ea.sin() - m;
            let fp = 1.0 - e * ea.cos();
            let step = f / fp;
            ea -= step;
            if step.abs() < KEPLER_TOL {
                break;
            }
        }
        ea
    }

    /// True anomaly at an arbitrary epoch, radians.
    pub fn true_anomaly_at(&self, epoch: Epoch) -> f64 {
        let ea = self.eccentric_anomaly_at(epoch);
        let e = self.eccentricity;
        if e == 0.0 {
            return ea;
        }
        let (s, c) = ea.sin_cos();
        let sv = (1.0 - e * e).sqrt() * s;
        let cv = c - e;
        sv.atan2(cv).rem_euclid(core::f64::consts::TAU)
    }

    /// Inertial position at `epoch`.
    pub fn position_at(&self, epoch: Epoch) -> Eci {
        let nu = self.true_anomaly_at(epoch);
        let e = self.eccentricity;
        let r = self.semi_major_axis_m * (1.0 - e * e) / (1.0 + e * nu.cos());
        // Position in the perifocal frame (z = 0).
        let perifocal = Vec3::new(r * nu.cos(), r * nu.sin(), 0.0);
        // Perifocal → ECI: Rz(Ω) · Rx(i) · Rz(ω).
        let rotated = perifocal
            .rotate_z(self.arg_perigee_rad)
            .rotate_x(self.inclination_rad)
            .rotate_z(self.raan_rad);
        Eci(rotated)
    }

    /// Inertial velocity at `epoch`, m/s, by analytic differentiation of the
    /// perifocal position.
    pub fn velocity_at(&self, epoch: Epoch) -> Vec3 {
        let nu = self.true_anomaly_at(epoch);
        let e = self.eccentricity;
        let p = self.semi_major_axis_m * (1.0 - e * e);
        let h = (EARTH_MU * p).sqrt(); // specific angular momentum
        let vr = EARTH_MU / h * e * nu.sin();
        let vt = EARTH_MU / h * (1.0 + e * nu.cos());
        let perifocal =
            Vec3::new(vr * nu.cos() - vt * nu.sin(), vr * nu.sin() + vt * nu.cos(), 0.0);
        perifocal
            .rotate_z(self.arg_perigee_rad)
            .rotate_x(self.inclination_rad)
            .rotate_z(self.raan_rad)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use sb_geo::EARTH_RADIUS_M;

    fn circ() -> OrbitalElements {
        OrbitalElements::circular(550e3, 53f64.to_radians(), 0.4, 0.7, Epoch::from_seconds(0.0))
    }

    #[test]
    fn circular_radius_constant() {
        let el = circ();
        for t in [0.0, 100.0, 1000.0, 5000.0] {
            let r = el.position_at(Epoch::from_seconds(t)).0.norm();
            assert!((r - (EARTH_RADIUS_M + 550e3)).abs() < 1e-3, "r {r} at {t}");
        }
    }

    #[test]
    fn period_matches_mean_motion() {
        let el = circ();
        assert!((el.period() * el.mean_motion() - core::f64::consts::TAU).abs() < 1e-9);
    }

    #[test]
    fn full_period_returns_to_start() {
        let el = circ();
        let p0 = el.position_at(Epoch::from_seconds(0.0));
        let p1 = el.position_at(Epoch::from_seconds(el.period()));
        assert!(p0.0.distance(p1.0) < 1.0, "drift {}", p0.0.distance(p1.0));
    }

    #[test]
    fn half_period_is_antipodal() {
        let el = circ();
        let p0 = el.position_at(Epoch::from_seconds(0.0));
        let p1 = el.position_at(Epoch::from_seconds(el.period() / 2.0));
        assert!(p0.0.distance(-p1.0) < 1.0);
    }

    #[test]
    fn inclination_bounds_latitude() {
        let el = circ();
        let r = EARTH_RADIUS_M + 550e3;
        let max_z = r * 53f64.to_radians().sin();
        for i in 0..200 {
            let t = el.period() * i as f64 / 200.0;
            let z = el.position_at(Epoch::from_seconds(t)).0.z;
            assert!(z.abs() <= max_z + 1.0);
        }
    }

    #[test]
    fn kepler_equation_solution_valid() {
        let mut el = circ();
        el.eccentricity = 0.3;
        for t in [0.0, 500.0, 2000.0, 4000.0] {
            let epoch = Epoch::from_seconds(t);
            let m = el.mean_anomaly_at(epoch);
            let ea = el.eccentric_anomaly_at(epoch);
            let recon = (ea - el.eccentricity * ea.sin()).rem_euclid(core::f64::consts::TAU);
            assert!(
                (recon - m).abs() < 1e-9 || (recon - m).abs() > core::f64::consts::TAU - 1e-9,
                "M mismatch {recon} vs {m}"
            );
        }
    }

    #[test]
    fn eccentric_orbit_radius_range() {
        let mut el = circ();
        el.eccentricity = 0.1;
        let a = el.semi_major_axis_m;
        let (mut rmin, mut rmax) = (f64::MAX, 0.0f64);
        for i in 0..1000 {
            let t = el.period() * i as f64 / 1000.0;
            let r = el.position_at(Epoch::from_seconds(t)).0.norm();
            rmin = rmin.min(r);
            rmax = rmax.max(r);
        }
        assert!((rmin - a * 0.9).abs() < a * 1e-3, "perigee {rmin}");
        assert!((rmax - a * 1.1).abs() < a * 1e-3, "apogee {rmax}");
    }

    #[test]
    fn velocity_magnitude_circular() {
        let el = circ();
        let v = el.velocity_at(Epoch::from_seconds(333.0)).norm();
        let expected = sb_geo::circular_orbit_velocity(550e3);
        assert!((v - expected).abs() < 1.0, "v {v} vs {expected}");
    }

    #[test]
    fn velocity_tangent_to_circular_orbit() {
        let el = circ();
        let t = Epoch::from_seconds(777.0);
        let r = el.position_at(t).0;
        let v = el.velocity_at(t);
        assert!(r.dot(v).abs() / (r.norm() * v.norm()) < 1e-9);
    }

    #[test]
    fn velocity_matches_finite_difference() {
        let mut el = circ();
        el.eccentricity = 0.05;
        let t = 444.0;
        let h = 1e-3;
        let p0 = el.position_at(Epoch::from_seconds(t - h)).0;
        let p1 = el.position_at(Epoch::from_seconds(t + h)).0;
        let fd = (p1 - p0) / (2.0 * h);
        let v = el.velocity_at(Epoch::from_seconds(t));
        assert!(fd.distance(v) < 1e-2 * v.norm(), "fd {fd} vs {v}");
    }

    proptest! {
        #[test]
        fn prop_kepler_converges(e in 0.0..0.9f64, m in 0.0..6.28f64) {
            let mut el = circ();
            el.eccentricity = e;
            el.mean_anomaly_rad = m;
            let ea = el.eccentric_anomaly_at(Epoch::from_seconds(0.0));
            let recon = (ea - e * ea.sin()).rem_euclid(core::f64::consts::TAU);
            let m0 = m.rem_euclid(core::f64::consts::TAU);
            let diff = (recon - m0).abs();
            prop_assert!(diff < 1e-8 || diff > core::f64::consts::TAU - 1e-8);
        }

        #[test]
        fn prop_radius_within_apsides(e in 0.0..0.5f64, t in 0.0..20000.0f64) {
            let mut el = circ();
            el.eccentricity = e;
            let a = el.semi_major_axis_m;
            let r = el.position_at(Epoch::from_seconds(t)).0.norm();
            prop_assert!(r >= a * (1.0 - e) - 1e-3);
            prop_assert!(r <= a * (1.0 + e) + 1e-3);
        }

        #[test]
        fn prop_propagation_periodic(t in 0.0..10000.0f64) {
            let el = circ();
            let p = el.period();
            let a = el.position_at(Epoch::from_seconds(t));
            let b = el.position_at(Epoch::from_seconds(t + p));
            prop_assert!(a.0.distance(b.0) < 1.0);
        }
    }
}
