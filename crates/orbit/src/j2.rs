//! Secular J2 perturbations.
//!
//! The Earth's equatorial bulge (the J2 spherical-harmonic term) makes
//! orbital planes precess: the ascending node drifts at `Ω̇` and the
//! argument of perigee at `ω̇`, both functions of altitude, eccentricity
//! and inclination. Over the paper's 6.4-hour horizon the effect on
//! topology is negligible (DESIGN.md records the SGP4→Kepler
//! substitution), but for multi-day studies — battery wear over weeks,
//! constellation maintenance — the secular drift matters, and it is what
//! makes sun-synchronous EO orbits sun-synchronous in the first place.
//!
//! [`J2Propagator`] wraps [`OrbitalElements`] and applies the secular
//! rates before evaluating the underlying Keplerian position.

use crate::kepler::OrbitalElements;
use sb_geo::coords::Eci;
use sb_geo::{Epoch, EARTH_MU, EARTH_RADIUS_M};

/// Earth's J2 zonal harmonic coefficient (dimensionless).
pub const EARTH_J2: f64 = 1.082_626_68e-3;

/// Secular drift rates induced by J2, radians per second.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SecularRates {
    /// Nodal precession rate `Ω̇`.
    pub raan_rate: f64,
    /// Apsidal rotation rate `ω̇`.
    pub arg_perigee_rate: f64,
    /// Correction to the mean motion (drag-free).
    pub mean_motion_delta: f64,
}

/// Computes the classical first-order secular J2 rates for an orbit.
pub fn secular_rates(elements: &OrbitalElements) -> SecularRates {
    let a = elements.semi_major_axis_m;
    let e = elements.eccentricity;
    let i = elements.inclination_rad;
    let n = (EARTH_MU / (a * a * a)).sqrt();
    let p = a * (1.0 - e * e);
    let factor = 1.5 * EARTH_J2 * (EARTH_RADIUS_M / p).powi(2) * n;
    let cos_i = i.cos();
    let sin2_i = i.sin().powi(2);
    SecularRates {
        raan_rate: -factor * cos_i,
        arg_perigee_rate: factor * (2.0 - 2.5 * sin2_i),
        mean_motion_delta: factor * (1.0 - 1.5 * sin2_i) * (1.0 - e * e).sqrt(),
    }
}

/// A J2-aware propagator: Keplerian motion plus secular plane drift.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct J2Propagator {
    elements: OrbitalElements,
    rates: SecularRates,
}

impl J2Propagator {
    /// Wraps elements with their secular J2 rates.
    pub fn new(elements: OrbitalElements) -> Self {
        J2Propagator { rates: secular_rates(&elements), elements }
    }

    /// The underlying (epoch) elements.
    pub fn elements(&self) -> &OrbitalElements {
        &self.elements
    }

    /// The secular rates in effect.
    pub fn rates(&self) -> &SecularRates {
        &self.rates
    }

    /// The osculating-mean elements drifted to `epoch`.
    pub fn elements_at(&self, epoch: Epoch) -> OrbitalElements {
        let dt = epoch.as_seconds() - self.elements.epoch.as_seconds();
        let tau = core::f64::consts::TAU;
        OrbitalElements {
            raan_rad: (self.elements.raan_rad + self.rates.raan_rate * dt).rem_euclid(tau),
            arg_perigee_rad: (self.elements.arg_perigee_rad + self.rates.arg_perigee_rate * dt)
                .rem_euclid(tau),
            mean_anomaly_rad: (self.elements.mean_anomaly_rad + self.rates.mean_motion_delta * dt)
                .rem_euclid(tau),
            ..self.elements
        }
    }

    /// Inertial position at `epoch`, including the secular drift.
    pub fn position_at(&self, epoch: Epoch) -> Eci {
        self.elements_at(epoch).position_at(epoch)
    }
}

/// The inclination (radians) that makes a circular orbit at `altitude_m`
/// sun-synchronous: nodal precession equal to the Earth's mean motion
/// around the Sun.
///
/// Returns `None` when no inclination achieves it (altitude too high).
pub fn sun_synchronous_inclination(altitude_m: f64) -> Option<f64> {
    let a = EARTH_RADIUS_M + altitude_m;
    let n = (EARTH_MU / (a * a * a)).sqrt();
    let factor = 1.5 * EARTH_J2 * (EARTH_RADIUS_M / a).powi(2) * n;
    let cos_i = -sb_geo::EARTH_ORBIT_RATE / factor;
    (-1.0..=1.0).contains(&cos_i).then(|| cos_i.acos())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn leo(inclination_deg: f64) -> OrbitalElements {
        OrbitalElements::circular(
            550e3,
            inclination_deg.to_radians(),
            0.0,
            0.0,
            Epoch::from_seconds(0.0),
        )
    }

    #[test]
    fn prograde_orbits_precess_westward() {
        let rates = secular_rates(&leo(53.0));
        assert!(rates.raan_rate < 0.0, "prograde → westward nodal drift");
        // Starlink-class: ≈ −5°/day.
        let deg_per_day = rates.raan_rate.to_degrees() * 86_400.0;
        assert!((-6.0..-4.0).contains(&deg_per_day), "drift {deg_per_day}°/day");
    }

    #[test]
    fn retrograde_orbits_precess_eastward() {
        let rates = secular_rates(&leo(97.4));
        assert!(rates.raan_rate > 0.0, "retrograde → eastward nodal drift");
    }

    #[test]
    fn polar_orbit_has_no_nodal_drift() {
        let rates = secular_rates(&leo(90.0));
        assert!(rates.raan_rate.abs() < 1e-12);
    }

    #[test]
    fn sun_synchronous_inclination_at_500km() {
        // Textbook value: ≈ 97.4° at 500 km.
        let i = sun_synchronous_inclination(500e3).unwrap().to_degrees();
        assert!((97.0..98.0).contains(&i), "inclination {i}");
    }

    #[test]
    fn sun_sync_impossible_at_very_high_altitude() {
        assert!(sun_synchronous_inclination(1.0e9).is_none());
    }

    #[test]
    fn sun_sync_orbit_tracks_the_sun() {
        // Propagate a sun-synchronous orbit a quarter year: its RAAN must
        // advance ~90°, staying fixed relative to the Sun.
        let alt = 500e3;
        let inc = sun_synchronous_inclination(alt).unwrap();
        let el = OrbitalElements::circular(alt, inc, 0.0, 0.0, Epoch::from_seconds(0.0));
        let prop = J2Propagator::new(el);
        let quarter_year = core::f64::consts::FRAC_PI_2 / sb_geo::EARTH_ORBIT_RATE;
        let drifted = prop.elements_at(Epoch::from_seconds(quarter_year));
        let expected = core::f64::consts::FRAC_PI_2;
        assert!(
            (drifted.raan_rad - expected).abs() < 0.01,
            "RAAN {} vs {expected}",
            drifted.raan_rad
        );
    }

    #[test]
    fn drift_is_rigid_across_a_walker_shell() {
        // Over the paper's 6.4 h horizon the RAAN drift is ≈ 1.2°, but it
        // is *identical* for every satellite of a shell (same a, e, i), so
        // the constellation rotates rigidly and the ISL wiring and USL
        // visibility statistics are unchanged — the DESIGN.md
        // justification for the SGP4 → Kepler substitution, asserted.
        let a = secular_rates(&leo(53.0));
        let mut other = leo(53.0);
        other.raan_rad = 2.0;
        other.mean_anomaly_rad = 1.0;
        let b = secular_rates(&other);
        assert!((a.raan_rate - b.raan_rate).abs() < 1e-18);
        let raan_shift_deg = (a.raan_rate * 384.0 * 60.0).to_degrees().abs();
        assert!((1.0..1.5).contains(&raan_shift_deg), "shift {raan_shift_deg}°");
    }

    #[test]
    fn position_continuous_with_kepler_at_epoch() {
        let el = leo(53.0);
        let prop = J2Propagator::new(el);
        let p_kepler = el.position_at(Epoch::from_seconds(0.0));
        let p_j2 = prop.position_at(Epoch::from_seconds(0.0));
        assert!(p_kepler.0.distance(p_j2.0) < 1e-6);
    }
}
