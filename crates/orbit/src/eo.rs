//! Synthetic Earth-observation (EO) fleet.
//!
//! The paper's space users are 223 medium/high-resolution EO satellites
//! operated by Planet Labs, propagated from real space-track TLEs. Live
//! ephemerides are not redistributable, so this module generates a
//! *deterministic synthetic fleet* with the same statistical profile:
//!
//! * sun-synchronous-like inclination (~97.4°) — where imaging
//!   constellations actually fly;
//! * altitudes spread over the 475–525 km band (Planet's Flock/SkySat
//!   range, below the 550 km broadband shell);
//! * right-ascension and phase spread deterministically over the fleet so
//!   coverage is global.
//!
//! Real TLEs can be substituted via [`crate::tle::Tle::parse_many`] +
//! [`crate::tle::Tle::to_elements`]; both paths produce the same
//! [`Satellite`] type.

use crate::kepler::OrbitalElements;
use crate::{Satellite, SatelliteKind};
use sb_geo::Epoch;

/// Number of EO satellites in the paper's evaluation (Planet Labs fleet).
pub const PAPER_EO_FLEET_SIZE: usize = 223;

/// Nominal sun-synchronous inclination for ~500 km, radians (≈97.4°).
pub const SUN_SYNC_INCLINATION_RAD: f64 = 97.4 * core::f64::consts::PI / 180.0;

/// Minimum altitude of the synthetic fleet, meters.
pub const EO_ALTITUDE_MIN_M: f64 = 475_000.0;

/// Maximum altitude of the synthetic fleet, meters.
pub const EO_ALTITUDE_MAX_M: f64 = 525_000.0;

/// Generates a deterministic synthetic EO fleet of `count` satellites.
///
/// The generator is a pure function of `count`: phases, planes and
/// altitudes are spread with low-discrepancy (golden-ratio) sequences so
/// any fleet size yields near-uniform global coverage, and repeated calls
/// are bit-identical (important for seeded experiments).
///
/// # Example
///
/// ```
/// use sb_orbit::eo;
/// let fleet = eo::synthetic_fleet(223);
/// assert_eq!(fleet.len(), 223);
/// assert!(fleet.iter().all(|s| s.kind == sb_orbit::SatelliteKind::EarthObservation));
/// ```
pub fn synthetic_fleet(count: usize) -> Vec<Satellite> {
    let tau = core::f64::consts::TAU;
    // Golden-ratio fractional part: the classic low-discrepancy sequence.
    const PHI_FRAC: f64 = 0.618_033_988_749_894_9;
    (0..count)
        .map(|i| {
            let u = (i as f64 * PHI_FRAC).fract();
            let v = (i as f64 * PHI_FRAC * PHI_FRAC).fract();
            let w = (i as f64 * 0.414_213_562_373_095).fract(); // frac(√2−1 scaled)
            let altitude = EO_ALTITUDE_MIN_M + (EO_ALTITUDE_MAX_M - EO_ALTITUDE_MIN_M) * w;
            let elements = OrbitalElements::circular(
                altitude,
                SUN_SYNC_INCLINATION_RAD,
                tau * u,
                tau * v,
                Epoch::from_seconds(0.0),
            );
            Satellite {
                name: format!("EO-{i:03}"),
                kind: SatelliteKind::EarthObservation,
                elements,
                plane: None,
                slot_in_plane: None,
            }
        })
        .collect()
}

/// Generates the paper-scale fleet of [`PAPER_EO_FLEET_SIZE`] satellites.
pub fn paper_fleet() -> Vec<Satellite> {
    synthetic_fleet(PAPER_EO_FLEET_SIZE)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sb_geo::EARTH_RADIUS_M;

    #[test]
    fn paper_fleet_size() {
        assert_eq!(paper_fleet().len(), PAPER_EO_FLEET_SIZE);
    }

    #[test]
    fn fleet_is_deterministic() {
        assert_eq!(synthetic_fleet(50), synthetic_fleet(50));
    }

    #[test]
    fn altitudes_in_band() {
        for s in synthetic_fleet(223) {
            let alt = s.elements.semi_major_axis_m - EARTH_RADIUS_M;
            assert!(
                (EO_ALTITUDE_MIN_M..=EO_ALTITUDE_MAX_M).contains(&alt),
                "altitude {alt} out of band"
            );
        }
    }

    #[test]
    fn eo_flies_below_broadband_shell() {
        for s in synthetic_fleet(223) {
            assert!(s.elements.semi_major_axis_m < EARTH_RADIUS_M + 550e3);
        }
    }

    #[test]
    fn raan_spread_is_global() {
        // The 223 RAANs should cover all four quadrants.
        let fleet = synthetic_fleet(223);
        let mut quadrants = [false; 4];
        for s in &fleet {
            let q = (s.elements.raan_rad / (core::f64::consts::TAU / 4.0)) as usize;
            quadrants[q.min(3)] = true;
        }
        assert!(quadrants.iter().all(|&q| q), "quadrants {quadrants:?}");
    }

    #[test]
    fn names_are_unique() {
        let fleet = synthetic_fleet(100);
        let mut names: Vec<&str> = fleet.iter().map(|s| s.name.as_str()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 100);
    }

    #[test]
    fn empty_fleet_is_fine() {
        assert!(synthetic_fleet(0).is_empty());
    }

    #[test]
    fn sun_sync_inclination_is_retrograde() {
        // i > 90°: the defining property of sun-synchronous orbits,
        // checked at compile time (the assertion is on constants).
        const _: () = assert!(SUN_SYNC_INCLINATION_RAD > core::f64::consts::FRAC_PI_2);
        for s in synthetic_fleet(5) {
            assert_eq!(s.elements.inclination_rad, SUN_SYNC_INCLINATION_RAD);
        }
    }
}
