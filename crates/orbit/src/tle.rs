//! Two-line element (TLE) parsing.
//!
//! The paper drives its space users from real Planet Labs ephemerides
//! downloaded from space-track.org. Those feeds distribute orbits in the
//! NORAD two-line element format. This module parses TLEs — including the
//! modulo-10 line checksum — and converts them to [`OrbitalElements`] so a
//! user of this library can drop in genuine ephemerides.
//!
//! Propagation of TLE-derived elements uses the same unperturbed Keplerian
//! model as the rest of the crate (a deliberate substitution for SGP4; see
//! DESIGN.md). The parsed drag/ndot fields are retained for completeness.
//!
//! # Example
//!
//! ```
//! use sb_orbit::tle::Tle;
//!
//! let l1 = "1 25544U 98067A   24001.50000000  .00016717  00000-0  10270-3 0  9009";
//! let l2 = "2 25544  51.6400 208.9163 0006317  69.9862 290.2553 15.49560532    00";
//! let tle = Tle::parse("ISS (ZARYA)", l1, l2)?;
//! assert_eq!(tle.catalog_number, 25544);
//! assert!((tle.inclination_deg - 51.64).abs() < 1e-6);
//! # Ok::<(), sb_orbit::tle::ParseTleError>(())
//! ```

use crate::kepler::OrbitalElements;
use sb_geo::{Epoch, EARTH_MU};
use serde::{Deserialize, Serialize};

/// Error returned when a TLE line cannot be parsed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseTleError {
    /// A line is shorter than the mandatory 68 characters.
    LineTooShort {
        /// Which line (1 or 2).
        line: u8,
        /// Actual length found.
        len: usize,
    },
    /// A line does not start with the expected line number.
    WrongLineNumber {
        /// Which line (1 or 2) was expected.
        expected: u8,
    },
    /// The modulo-10 checksum does not match.
    ChecksumMismatch {
        /// Which line (1 or 2).
        line: u8,
        /// Checksum computed from the line body.
        computed: u32,
        /// Checksum digit present in the line.
        found: u32,
    },
    /// A numeric field failed to parse.
    BadField {
        /// Name of the field.
        field: &'static str,
    },
    /// The catalog numbers of line 1 and line 2 disagree.
    CatalogMismatch,
}

impl core::fmt::Display for ParseTleError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            ParseTleError::LineTooShort { line, len } => {
                write!(f, "TLE line {line} too short ({len} chars, need 68)")
            }
            ParseTleError::WrongLineNumber { expected } => {
                write!(f, "expected TLE line {expected}")
            }
            ParseTleError::ChecksumMismatch { line, computed, found } => {
                write!(f, "TLE line {line} checksum mismatch (computed {computed}, found {found})")
            }
            ParseTleError::BadField { field } => write!(f, "unparsable TLE field `{field}`"),
            ParseTleError::CatalogMismatch => {
                write!(f, "catalog numbers of line 1 and line 2 disagree")
            }
        }
    }
}

impl std::error::Error for ParseTleError {}

/// A parsed two-line element set.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Tle {
    /// Satellite name (line 0, or caller-provided).
    pub name: String,
    /// NORAD catalog number.
    pub catalog_number: u32,
    /// Epoch year (full, e.g. 2024).
    pub epoch_year: u32,
    /// Epoch day-of-year with fraction.
    pub epoch_day: f64,
    /// Inclination, degrees.
    pub inclination_deg: f64,
    /// Right ascension of the ascending node, degrees.
    pub raan_deg: f64,
    /// Eccentricity (dimensionless).
    pub eccentricity: f64,
    /// Argument of perigee, degrees.
    pub arg_perigee_deg: f64,
    /// Mean anomaly, degrees.
    pub mean_anomaly_deg: f64,
    /// Mean motion, revolutions per day.
    pub mean_motion_rev_per_day: f64,
    /// First derivative of mean motion ÷ 2 (rev/day²), as encoded.
    pub ndot_over_2: f64,
    /// BSTAR drag term (1/Earth radii), as encoded.
    pub bstar: f64,
}

impl Tle {
    /// Parses a TLE from its two data lines (plus a caller-supplied name).
    ///
    /// # Errors
    ///
    /// Returns [`ParseTleError`] when a line is malformed, a checksum fails,
    /// or the two lines describe different satellites.
    pub fn parse(name: &str, line1: &str, line2: &str) -> Result<Tle, ParseTleError> {
        validate_line(line1, 1)?;
        validate_line(line2, 2)?;

        let cat1: u32 = field(line1, 2, 7, "catalog number (line 1)")?;
        let cat2: u32 = field(line2, 2, 7, "catalog number (line 2)")?;
        if cat1 != cat2 {
            return Err(ParseTleError::CatalogMismatch);
        }

        let epoch_yy: u32 = field(line1, 18, 20, "epoch year")?;
        // Per convention: 57–99 → 1957–1999, 00–56 → 2000–2056.
        let epoch_year = if epoch_yy >= 57 { 1900 + epoch_yy } else { 2000 + epoch_yy };
        let epoch_day: f64 = field(line1, 20, 32, "epoch day")?;
        let ndot_over_2: f64 = field_signed_decimal(line1, 33, 43, "ndot/2")?;
        let bstar = implied_decimal(line1.get(53..61).unwrap_or(""), "bstar")?;

        let inclination_deg: f64 = field(line2, 8, 16, "inclination")?;
        let raan_deg: f64 = field(line2, 17, 25, "raan")?;
        let ecc_str = line2.get(26..33).ok_or(ParseTleError::BadField { field: "eccentricity" })?;
        let eccentricity: f64 = format!("0.{}", ecc_str.trim())
            .parse()
            .map_err(|_| ParseTleError::BadField { field: "eccentricity" })?;
        let arg_perigee_deg: f64 = field(line2, 34, 42, "argument of perigee")?;
        let mean_anomaly_deg: f64 = field(line2, 43, 51, "mean anomaly")?;
        let mean_motion_rev_per_day: f64 = field(line2, 52, 63, "mean motion")?;

        Ok(Tle {
            name: name.trim().to_owned(),
            catalog_number: cat1,
            epoch_year,
            epoch_day,
            inclination_deg,
            raan_deg,
            eccentricity,
            arg_perigee_deg,
            mean_anomaly_deg,
            mean_motion_rev_per_day,
            ndot_over_2,
            bstar,
        })
    }

    /// Parses a sequence of concatenated 2-line or 3-line (named) element
    /// sets, skipping blank lines.
    ///
    /// # Errors
    ///
    /// Returns the first parse error encountered.
    pub fn parse_many(text: &str) -> Result<Vec<Tle>, ParseTleError> {
        let lines: Vec<&str> =
            text.lines().map(str::trim_end).filter(|l| !l.trim().is_empty()).collect();
        let mut out = Vec::new();
        let mut i = 0;
        let mut anon = 0u32;
        while i < lines.len() {
            let (name, l1, l2) = if lines[i].starts_with("1 ") {
                anon += 1;
                let (l1, l2) = (lines[i], *lines.get(i + 1).unwrap_or(&""));
                i += 2;
                (format!("SAT-{anon:04}"), l1, l2)
            } else {
                let name = lines[i].to_owned();
                let (l1, l2) = (*lines.get(i + 1).unwrap_or(&""), *lines.get(i + 2).unwrap_or(&""));
                i += 3;
                (name, l1, l2)
            };
            out.push(Tle::parse(&name, l1, l2)?);
        }
        Ok(out)
    }

    /// Semi-major axis implied by the mean motion, meters.
    pub fn semi_major_axis_m(&self) -> f64 {
        let n = self.mean_motion_rev_per_day * core::f64::consts::TAU / 86_400.0; // rad/s
        (EARTH_MU / (n * n)).cbrt()
    }

    /// Converts to [`OrbitalElements`] for Keplerian propagation, placing the
    /// TLE's own epoch at simulation second `epoch_offset_s`.
    pub fn to_elements(&self, epoch_offset_s: f64) -> OrbitalElements {
        OrbitalElements {
            semi_major_axis_m: self.semi_major_axis_m(),
            eccentricity: self.eccentricity,
            inclination_rad: self.inclination_deg.to_radians(),
            raan_rad: self.raan_deg.to_radians(),
            arg_perigee_rad: self.arg_perigee_deg.to_radians(),
            mean_anomaly_rad: self.mean_anomaly_deg.to_radians(),
            epoch: Epoch::from_seconds(epoch_offset_s),
        }
    }
}

/// Computes the NORAD modulo-10 checksum of a line body (all characters
/// except the final checksum digit): digits count their value, `-` counts 1.
pub fn checksum(body: &str) -> u32 {
    body.chars()
        .map(|c| match c {
            '0'..='9' => c as u32 - '0' as u32,
            '-' => 1,
            _ => 0,
        })
        .sum::<u32>()
        % 10
}

fn validate_line(line: &str, which: u8) -> Result<(), ParseTleError> {
    if line.len() < 68 {
        return Err(ParseTleError::LineTooShort { line: which, len: line.len() });
    }
    if !line.starts_with(&format!("{which} ")) {
        return Err(ParseTleError::WrongLineNumber { expected: which });
    }
    if line.len() >= 69 {
        let found = line
            .chars()
            .nth(68)
            .and_then(|c| c.to_digit(10))
            .ok_or(ParseTleError::BadField { field: "checksum" })?;
        let computed = checksum(&line[..68]);
        if computed != found {
            return Err(ParseTleError::ChecksumMismatch { line: which, computed, found });
        }
    }
    Ok(())
}

fn field<T: core::str::FromStr>(
    line: &str,
    start: usize,
    end: usize,
    name: &'static str,
) -> Result<T, ParseTleError> {
    line.get(start..end)
        .map(str::trim)
        .and_then(|s| s.parse().ok())
        .ok_or(ParseTleError::BadField { field: name })
}

/// Parses fields like ` .00016717` / `-.00002182` (decimal with omitted
/// leading zero).
fn field_signed_decimal(
    line: &str,
    start: usize,
    end: usize,
    name: &'static str,
) -> Result<f64, ParseTleError> {
    let raw = line.get(start..end).map(str::trim).ok_or(ParseTleError::BadField { field: name })?;
    let normalized = if let Some(rest) = raw.strip_prefix("-.") {
        format!("-0.{rest}")
    } else if let Some(rest) = raw.strip_prefix('.') {
        format!("0.{rest}")
    } else if let Some(rest) = raw.strip_prefix("+.") {
        format!("0.{rest}")
    } else {
        raw.to_owned()
    };
    normalized.parse().map_err(|_| ParseTleError::BadField { field: name })
}

/// Parses the TLE "implied decimal point with exponent" notation, e.g.
/// `10270-3` → 0.10270e-3 and `00000-0` → 0.0.
fn implied_decimal(raw: &str, name: &'static str) -> Result<f64, ParseTleError> {
    let s = raw.trim();
    if s.is_empty() {
        return Ok(0.0);
    }
    let (sign, rest) = match s.strip_prefix('-') {
        Some(r) => (-1.0, r),
        None => (1.0, s.strip_prefix('+').unwrap_or(s)),
    };
    // Split mantissa and exponent at the last +/-.
    let split = rest.rfind(['+', '-']);
    let (mant_str, exp_str) = match split {
        Some(idx) if idx > 0 => rest.split_at(idx),
        _ => (rest, "0"),
    };
    let mant: f64 = format!("0.{}", mant_str.trim())
        .parse()
        .map_err(|_| ParseTleError::BadField { field: name })?;
    let exp: i32 = exp_str.parse().map_err(|_| ParseTleError::BadField { field: name })?;
    Ok(sign * mant * 10f64.powi(exp))
}

#[cfg(test)]
mod tests {
    use super::*;

    const ISS_L1: &str = "1 25544U 98067A   24001.50000000  .00016717  00000-0  10270-3 0  9009";
    const ISS_L2: &str = "2 25544  51.6400 208.9163 0006317  69.9862 290.2553 15.49560532    00";

    #[test]
    fn parses_iss() {
        let t = Tle::parse("ISS", ISS_L1, ISS_L2).unwrap();
        assert_eq!(t.catalog_number, 25544);
        assert_eq!(t.epoch_year, 2024);
        assert!((t.epoch_day - 1.5).abs() < 1e-9);
        assert!((t.inclination_deg - 51.64).abs() < 1e-9);
        assert!((t.eccentricity - 0.0006317).abs() < 1e-9);
        assert!((t.mean_motion_rev_per_day - 15.49560532).abs() < 1e-9);
        assert!((t.ndot_over_2 - 0.00016717).abs() < 1e-12);
        assert!((t.bstar - 0.10270e-3).abs() < 1e-12);
    }

    #[test]
    fn iss_semi_major_axis_reasonable() {
        let t = Tle::parse("ISS", ISS_L1, ISS_L2).unwrap();
        let alt_km = (t.semi_major_axis_m() - sb_geo::EARTH_RADIUS_M) / 1000.0;
        assert!((350.0..450.0).contains(&alt_km), "ISS altitude {alt_km} km");
    }

    #[test]
    fn checksum_computation() {
        assert_eq!(checksum(&ISS_L1[..68]), 9);
        assert_eq!(checksum(&ISS_L2[..68]), 0);
        assert_eq!(checksum("1 "), 1);
        assert_eq!(checksum("---"), 3);
    }

    #[test]
    fn rejects_bad_checksum() {
        let mut bad = ISS_L1.to_owned();
        bad.replace_range(68..69, "3");
        let err = Tle::parse("ISS", &bad, ISS_L2).unwrap_err();
        assert!(matches!(err, ParseTleError::ChecksumMismatch { line: 1, .. }), "{err}");
    }

    #[test]
    fn rejects_short_line() {
        let err = Tle::parse("X", "1 25544U", ISS_L2).unwrap_err();
        assert!(matches!(err, ParseTleError::LineTooShort { line: 1, .. }));
    }

    #[test]
    fn rejects_swapped_lines() {
        let err = Tle::parse("X", ISS_L2, ISS_L1).unwrap_err();
        assert!(matches!(err, ParseTleError::WrongLineNumber { expected: 1 }));
    }

    #[test]
    fn rejects_catalog_mismatch() {
        let l2 = "2 25545  51.6400 208.9163 0006317  69.9862 290.2553 15.49560532    05";
        // Fix the checksum for the altered digit.
        let body = &l2[..68];
        let l2_fixed = format!("{body}{}", checksum(body));
        let err = Tle::parse("X", ISS_L1, &l2_fixed).unwrap_err();
        assert_eq!(err, ParseTleError::CatalogMismatch);
    }

    #[test]
    fn to_elements_roundtrip_orbit_size() {
        let t = Tle::parse("ISS", ISS_L1, ISS_L2).unwrap();
        let el = t.to_elements(0.0);
        // Period from elements should match the TLE mean motion.
        let period_s = el.period();
        let revs_per_day = 86_400.0 / period_s;
        assert!((revs_per_day - t.mean_motion_rev_per_day).abs() < 1e-6);
    }

    #[test]
    fn parse_many_with_and_without_names() {
        let text = format!("ISS (ZARYA)\n{ISS_L1}\n{ISS_L2}\n\n{ISS_L1}\n{ISS_L2}\n");
        let tles = Tle::parse_many(&text).unwrap();
        assert_eq!(tles.len(), 2);
        assert_eq!(tles[0].name, "ISS (ZARYA)");
        assert_eq!(tles[1].name, "SAT-0001");
    }

    #[test]
    fn implied_decimal_forms() {
        assert!((implied_decimal("10270-3", "x").unwrap() - 0.10270e-3).abs() < 1e-15);
        assert!((implied_decimal("-11606-4", "x").unwrap() + 0.11606e-4).abs() < 1e-15);
        assert_eq!(implied_decimal("00000-0", "x").unwrap(), 0.0);
        assert_eq!(implied_decimal("", "x").unwrap(), 0.0);
        assert!((implied_decimal("12345+1", "x").unwrap() - 1.2345).abs() < 1e-12);
    }

    #[test]
    fn error_display_is_meaningful() {
        let e = ParseTleError::ChecksumMismatch { line: 2, computed: 3, found: 7 };
        let msg = format!("{e}");
        assert!(msg.contains("checksum") && msg.contains('2'));
    }
}
