//! Orbit propagation for the space-booking LSN simulator.
//!
//! Implements everything the topology layer needs to know about where
//! satellites are:
//!
//! * [`kepler`] — classical orbital elements and two-body Keplerian
//!   propagation (circular and low-eccentricity orbits);
//! * [`walker`] — Walker-delta constellation generation (used to model
//!   SpaceX Starlink Shell 1: 22 planes × 72 satellites, 550 km, 53°);
//! * [`tle`] — a checksum-validating two-line-element (TLE) parser so real
//!   ephemerides (e.g. Planet Labs from space-track.org) can be ingested;
//! * [`j2`] — secular J2 nodal/apsidal precession for multi-day studies
//!   (and the sun-synchronous inclination calculator);
//! * [`eo`] — a deterministic synthetic Earth-observation fleet standing in
//!   for the paper's 223 Planet Labs satellites (see DESIGN.md for the
//!   substitution rationale);
//! * [`Constellation`] — a propagatable collection of satellites with
//!   sunlight/umbra annotation.
//!
//! # Example
//!
//! ```
//! use sb_orbit::{walker::WalkerConstellation, Constellation};
//! use sb_geo::Epoch;
//!
//! // A small Walker constellation: 3 planes × 4 satellites at 550 km, 53°.
//! let shell = WalkerConstellation::delta(3, 4, 1, 550e3, 53f64.to_radians());
//! let constellation = Constellation::from_walker(&shell);
//! let states = constellation.propagate(Epoch::from_seconds(120.0));
//! assert_eq!(states.len(), 12);
//! ```

#![warn(missing_docs)]
pub mod eo;
pub mod j2;
pub mod kepler;
pub mod tle;
pub mod walker;

use kepler::OrbitalElements;
use sb_geo::coords::Eci;
use sb_geo::{sun, Epoch};
use serde::{Deserialize, Serialize};

/// What role a satellite plays in the network.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SatelliteKind {
    /// A broadband relay satellite: part of the LSN backbone, has ISLs and
    /// USLs, consumes energy to forward traffic.
    Broadband,
    /// An Earth-observation satellite: a *space user* that sources data
    /// transfer requests but does not route third-party traffic.
    EarthObservation,
}

impl core::fmt::Display for SatelliteKind {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            SatelliteKind::Broadband => write!(f, "broadband"),
            SatelliteKind::EarthObservation => write!(f, "earth-observation"),
        }
    }
}

/// A satellite: identity, role and orbit.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Satellite {
    /// Human-readable designation, e.g. `"WALKER P03-S41"`.
    pub name: String,
    /// Network role.
    pub kind: SatelliteKind,
    /// Orbital elements used for propagation.
    pub elements: OrbitalElements,
    /// Index of the orbital plane within its constellation, when generated
    /// from a Walker shell (used for ISL wiring); `None` for TLE-ingested or
    /// ad-hoc satellites.
    pub plane: Option<usize>,
    /// Index of the satellite within its plane, when generated from a Walker
    /// shell; `None` otherwise.
    pub slot_in_plane: Option<usize>,
}

/// The instantaneous state of one satellite.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SatelliteState {
    /// Inertial position, meters.
    pub position: Eci,
    /// `true` when the satellite is in sunlight (solar panels harvesting),
    /// `false` when inside the Earth's umbra.
    pub sunlit: bool,
}

/// A propagatable collection of satellites.
///
/// The constellation is the boundary between the orbital-mechanics layer and
/// the network layer: the topology builder consumes `Vec<SatelliteState>`
/// snapshots and never touches orbital elements directly.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct Constellation {
    satellites: Vec<Satellite>,
}

impl Constellation {
    /// Creates an empty constellation.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds a constellation of [`SatelliteKind::Broadband`] satellites
    /// from a Walker shell.
    pub fn from_walker(shell: &walker::WalkerConstellation) -> Self {
        let satellites = shell
            .elements()
            .map(|(plane, slot, elements)| Satellite {
                name: format!("WALKER P{plane:02}-S{slot:02}"),
                kind: SatelliteKind::Broadband,
                elements,
                plane: Some(plane),
                slot_in_plane: Some(slot),
            })
            .collect();
        Constellation { satellites }
    }

    /// Adds a satellite, returning its index.
    pub fn push(&mut self, satellite: Satellite) -> usize {
        self.satellites.push(satellite);
        self.satellites.len() - 1
    }

    /// Appends all satellites from another constellation.
    pub fn extend_from(&mut self, other: &Constellation) {
        self.satellites.extend_from_slice(&other.satellites);
    }

    /// The satellites in index order.
    pub fn satellites(&self) -> &[Satellite] {
        &self.satellites
    }

    /// Number of satellites.
    pub fn len(&self) -> usize {
        self.satellites.len()
    }

    /// `true` when the constellation holds no satellites.
    pub fn is_empty(&self) -> bool {
        self.satellites.is_empty()
    }

    /// Propagates every satellite to `epoch`, annotating each with its
    /// sunlight state.
    pub fn propagate(&self, epoch: Epoch) -> Vec<SatelliteState> {
        self.satellites
            .iter()
            .map(|s| {
                let position = s.elements.position_at(epoch);
                SatelliteState { position, sunlit: !sun::in_umbra(position, epoch) }
            })
            .collect()
    }
}

impl FromIterator<Satellite> for Constellation {
    fn from_iter<I: IntoIterator<Item = Satellite>>(iter: I) -> Self {
        Constellation { satellites: iter.into_iter().collect() }
    }
}

impl Extend<Satellite> for Constellation {
    fn extend<I: IntoIterator<Item = Satellite>>(&mut self, iter: I) {
        self.satellites.extend(iter);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::walker::WalkerConstellation;

    #[test]
    fn constellation_from_walker_has_all_sats() {
        let shell = WalkerConstellation::delta(4, 5, 1, 550e3, 53f64.to_radians());
        let c = Constellation::from_walker(&shell);
        assert_eq!(c.len(), 20);
        assert!(!c.is_empty());
        assert!(c.satellites().iter().all(|s| s.kind == SatelliteKind::Broadband));
        assert_eq!(c.satellites()[0].plane, Some(0));
    }

    #[test]
    fn propagation_returns_leo_radii() {
        let shell = WalkerConstellation::delta(2, 3, 0, 550e3, 53f64.to_radians());
        let c = Constellation::from_walker(&shell);
        for st in c.propagate(Epoch::from_seconds(500.0)) {
            let r = st.position.0.norm();
            assert!((r - (sb_geo::EARTH_RADIUS_M + 550e3)).abs() < 1.0, "radius {r}");
        }
    }

    #[test]
    fn some_sats_sunlit_some_shadowed() {
        // A full shell must straddle the terminator.
        let shell = WalkerConstellation::delta(6, 12, 1, 550e3, 53f64.to_radians());
        let c = Constellation::from_walker(&shell);
        let states = c.propagate(Epoch::from_seconds(0.0));
        let lit = states.iter().filter(|s| s.sunlit).count();
        assert!(lit > 0 && lit < states.len(), "lit {lit}/{}", states.len());
    }

    #[test]
    fn extend_and_collect() {
        let shell = WalkerConstellation::delta(1, 2, 0, 550e3, 0.9);
        let mut a = Constellation::from_walker(&shell);
        let b: Constellation = a.satellites().to_vec().into_iter().collect();
        a.extend_from(&b);
        assert_eq!(a.len(), 4);
    }
}
