//! Failure injection: the stack must degrade gracefully, not panic, when
//! the environment is hostile — permanent eclipse, dead batteries, zero
//! capacity, unreachable users, empty workloads, and *unforeseen* outages
//! that strike admitted reservations mid-flight. For the unforeseen case,
//! every repair policy (`Drop` / `Repair` / `RepairPaid`) must survive
//! worst-case failure processes — every satellite permanently down, or a
//! battery too dead to admit anything — with consistent accounting.

use space_booking::sb_cear::{
    Cear, CearParams, Decision, NetworkState, RejectReason, RepairPolicy, RoutingAlgorithm, Ssp,
};
use space_booking::sb_demand::{RateProfile, Request, RequestId};
use space_booking::sb_energy::EnergyParams;
use space_booking::sb_geo::coords::Geodetic;
use space_booking::sb_orbit::walker::WalkerConstellation;
use space_booking::sb_sim::engine::{self, AlgorithmKind};
use space_booking::sb_sim::{ScenarioConfig, UnforeseenFailures};
use space_booking::sb_topology::failures::{FailureModel, NodeOutageModel};
use space_booking::sb_topology::{NetworkNodes, NodeId, SlotIndex, TopologyConfig, TopologySeries};

fn network(
    topology: TopologyConfig,
    energy: EnergyParams,
    slots: usize,
) -> (NetworkState, NodeId, NodeId) {
    let shell = WalkerConstellation::delta(12, 12, 1, 550e3, 53f64.to_radians());
    let mut nodes = NetworkNodes::from_walker(&shell);
    let a = nodes.add_ground_site(Geodetic::from_degrees(35.8, -78.6, 0.0));
    let b = nodes.add_ground_site(Geodetic::from_degrees(48.9, 2.3, 0.0));
    let series = TopologySeries::build(&nodes, &topology, slots, 60.0);
    (NetworkState::new(series, &energy), a, b)
}

fn request(src: NodeId, dst: NodeId, rate: f64) -> Request {
    Request {
        id: RequestId(0),
        source: src,
        destination: dst,
        rate: RateProfile::Constant(rate),
        start: SlotIndex(0),
        end: SlotIndex(2),
        valuation: f64::MAX,
    }
}

#[test]
fn impossible_elevation_mask_rejects_everything() {
    // An 89.9° mask means no satellite is ever visible: every request must
    // be rejected with NoFeasiblePath, never a panic.
    let topology =
        TopologyConfig { min_elevation_rad: 89.9f64.to_radians(), ..TopologyConfig::default() };
    let (mut state, a, b) = network(topology, EnergyParams::default(), 3);
    for algo in
        [&mut Cear::new(CearParams::default()) as &mut dyn RoutingAlgorithm, &mut Ssp::new()]
    {
        let d = algo.process(&request(a, b, 500.0), &mut state);
        assert_eq!(d, Decision::Rejected { reason: RejectReason::NoFeasiblePath });
    }
}

#[test]
fn dead_batteries_and_no_sun_reject_on_energy() {
    // Zero solar harvest and near-zero batteries: a gateway needs kJ per
    // slot, so no request can be served.
    let topology =
        TopologyConfig { min_elevation_rad: 10f64.to_radians(), ..TopologyConfig::default() };
    let energy =
        EnergyParams { solar_harvest_w: 0.0, battery_capacity_j: 1.0, ..EnergyParams::default() };
    let (mut state, a, b) = network(topology, energy, 3);
    let mut cear = Cear::new(CearParams::default());
    let d = cear.process(&request(a, b, 500.0), &mut state);
    assert_eq!(d, Decision::Rejected { reason: RejectReason::NoFeasiblePath });
}

#[test]
fn permanent_umbra_still_serves_within_battery() {
    // No sun at all, but a huge battery: requests are served until the
    // battery budget runs out, and never beyond.
    let topology =
        TopologyConfig { min_elevation_rad: 10f64.to_radians(), ..TopologyConfig::default() };
    let energy = EnergyParams {
        solar_harvest_w: 0.0,
        battery_capacity_j: 50_000.0,
        ..EnergyParams::default()
    };
    let (mut state, a, b) = network(topology, energy, 3);
    let mut cear = Cear::new(CearParams::default());
    let mut accepted = 0;
    for _ in 0..20 {
        if cear.process(&request(a, b, 500.0), &mut state).is_accepted() {
            accepted += 1;
        }
    }
    assert!(accepted >= 1, "a 50 kJ battery covers at least one 3-slot request");
    assert!(accepted < 20, "energy must eventually run out with zero harvest");
    for sat in 0..state.num_satellites() {
        for t in 0..3 {
            assert!(state.ledger().battery_level_j(sat, t) >= -1e-6);
        }
    }
}

#[test]
fn zero_capacity_links_reject_on_bandwidth() {
    let topology = TopologyConfig {
        min_elevation_rad: 10f64.to_radians(),
        isl_capacity_mbps: 0.0,
        usl_capacity_mbps: 0.0,
        ..TopologyConfig::default()
    };
    let (mut state, a, b) = network(topology, EnergyParams::default(), 3);
    let mut cear = Cear::new(CearParams::default());
    let d = cear.process(&request(a, b, 1.0), &mut state);
    assert_eq!(d, Decision::Rejected { reason: RejectReason::NoFeasiblePath });
}

#[test]
fn same_source_and_destination_is_rejected() {
    let topology =
        TopologyConfig { min_elevation_rad: 10f64.to_radians(), ..TopologyConfig::default() };
    let (mut state, a, _) = network(topology, EnergyParams::default(), 3);
    let mut cear = Cear::new(CearParams::default());
    let d = cear.process(&request(a, a, 500.0), &mut state);
    assert_eq!(d, Decision::Rejected { reason: RejectReason::NoFeasiblePath });
}

#[test]
fn empty_workload_scenario_runs() {
    let mut scenario = ScenarioConfig::tiny();
    scenario.arrivals_per_slot = 0.0;
    let m = engine::run(&scenario, &AlgorithmKind::Cear(CearParams::default()), 0);
    assert_eq!(m.total_requests, 0);
    assert_eq!(m.social_welfare_ratio, 1.0, "vacuous success");
    assert_eq!(m.welfare, 0.0);
}

#[test]
fn request_longer_than_horizon_is_truncated_by_generator_but_direct_use_panics_safely() {
    // The engine clamps durations; direct API users who exceed the horizon
    // hit the snapshot bounds — verify the panic is the documented one,
    // not UB or a wrong answer.
    let topology =
        TopologyConfig { min_elevation_rad: 10f64.to_radians(), ..TopologyConfig::default() };
    let (mut state, a, b) = network(topology, EnergyParams::default(), 2);
    let mut cear = Cear::new(CearParams::default());
    let mut r = request(a, b, 500.0);
    r.end = SlotIndex(10); // beyond the 2-slot horizon
    let result =
        std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| cear.process(&r, &mut state)));
    assert!(result.is_err(), "out-of-horizon request must not silently succeed");
}

#[test]
fn all_policies_survive_permanent_satellite_outage() {
    // Outage probability 1.0 takes every satellite (and thus every edge,
    // USLs included) down in every slot. Admission still happens on the
    // clean routed topology, so each accepted plan breaks at its very
    // first slot boundary and no repair can ever find a path. Every
    // policy must finish the run with zero delivered welfare and sane
    // accounting — never a panic.
    let mut scenario = ScenarioConfig::tiny();
    for policy in RepairPolicy::all() {
        scenario.unforeseen = Some(UnforeseenFailures {
            model: FailureModel::NodeOutages(NodeOutageModel::new(1.0, 1, 4, 0xdead)),
            policy,
        });
        let m = engine::run(&scenario, &AlgorithmKind::Cear(CearParams::default()), 0);
        assert!(m.accepted_requests > 0, "{policy:?}: the clean topology admits requests");
        assert_eq!(
            m.delivered_welfare, 0.0,
            "{policy:?}: nothing can be delivered when every slot is down"
        );
        assert_eq!(
            m.interrupted_requests, m.accepted_requests,
            "{policy:?}: every accepted plan breaks at its first boundary"
        );
        assert_eq!(
            m.sla_violations, m.accepted_requests,
            "{policy:?}: every accepted request misses slots"
        );
        if policy == RepairPolicy::Drop {
            assert_eq!(m.repair_attempts, 0, "Drop never attempts repair");
        } else {
            assert!(m.repair_attempts > 0, "{policy:?}: broken plans trigger repair attempts");
        }
        assert_eq!(m.repairs_succeeded, 0, "{policy:?}: no path exists to repair onto");
    }
}

#[test]
fn all_policies_survive_dead_battery_scenario() {
    // Near-zero batteries and no sun: admission rejects everything, so the
    // unforeseen-failure machinery has no active reservations to break.
    // The run must still complete under every policy.
    let mut scenario = ScenarioConfig::tiny();
    scenario.energy.solar_harvest_w = 0.0;
    scenario.energy.battery_capacity_j = 1.0;
    for policy in RepairPolicy::all() {
        scenario.unforeseen = Some(UnforeseenFailures {
            model: FailureModel::NodeOutages(NodeOutageModel::new(0.5, 1, 4, 0xdead)),
            policy,
        });
        let m = engine::run(&scenario, &AlgorithmKind::Cear(CearParams::default()), 0);
        assert!(m.total_requests > 0, "{policy:?}: the workload is non-empty");
        assert_eq!(m.accepted_requests, 0, "{policy:?}: dead batteries admit nothing");
        assert_eq!(m.interrupted_requests, 0, "{policy:?}: nothing admitted, nothing broken");
        assert_eq!(m.delivered_welfare, 0.0);
        assert_eq!(m.repair_attempts, 0);
    }
}

#[test]
fn baselines_survive_hostile_configs_too() {
    let topology = TopologyConfig {
        min_elevation_rad: 10f64.to_radians(),
        isl_capacity_mbps: 10.0, // almost nothing
        ..TopologyConfig::default()
    };
    let energy = EnergyParams { battery_capacity_j: 500.0, ..EnergyParams::default() };
    let (mut state, a, b) = network(topology, energy, 3);
    for kind in [AlgorithmKind::Ssp, AlgorithmKind::Ecars, AlgorithmKind::Eru, AlgorithmKind::Era] {
        let mut algo = kind.instantiate();
        // Must terminate with a decision, not panic.
        let _ = algo.process(&request(a, b, 900.0), &mut state);
    }
}
