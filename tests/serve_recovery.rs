//! Kill-anywhere recovery for the admission service: crash the WAL disk
//! at 20+ scripted operation points — with and without extra IO-fault
//! noise — recover from the durable prefix (optionally through a
//! checkpoint), resume the request stream, and require the final decision
//! stream and network state to be bit-identical to a never-killed run's.
//! Along the way, every acknowledged decision must already be durable
//! (WAL-before-ack), and every durable prefix must agree with the
//! reference decision stream.

use space_booking::sb_cear::{CearParams, NetworkState};
use space_booking::sb_demand::Request;
use space_booking::sb_serve::{wal, AdmissionService, ServeConfig};
use space_booking::sb_sim::engine::{self, AlgorithmKind, PreparedNetwork};
use space_booking::sb_sim::faultio::{CrashPoint, FaultIo, FaultPlan};
use space_booking::sb_sim::journal::{self, Journal, JournalRecord};
use space_booking::sb_sim::{checkpoint, ScenarioConfig};
use std::path::{Path, PathBuf};

struct Fixture {
    scenario: ScenarioConfig,
    digest: u64,
    prepared: PreparedNetwork,
    requests: Vec<Request>,
}

fn fixture() -> Fixture {
    let scenario = ScenarioConfig::tiny();
    let kind = AlgorithmKind::Cear(CearParams::default());
    let digest = engine::run_digest(&scenario, &kind, 0);
    let prepared = engine::prepare(&scenario, 0);
    let mut requests = engine::workload(&scenario, &prepared, 0);
    requests.truncate(30);
    assert!(requests.len() >= 20, "tiny workload too small for kill sweep");
    Fixture { scenario, digest, prepared, requests }
}

fn fresh_state(f: &Fixture) -> NetworkState {
    NetworkState::new(f.prepared.series.clone(), &f.scenario.energy)
}

fn serve_cfg(f: &Fixture) -> ServeConfig {
    let mut cfg = ServeConfig::new(f.digest, 0);
    cfg.workers = 2;
    cfg
}

fn canon(records: &[JournalRecord]) -> Vec<JournalRecord> {
    records.iter().map(wal::canonical_record).collect()
}

fn snapshot(state: &NetworkState) -> Vec<u8> {
    let mut w = sb_wire::Writer::new();
    state.encode_snapshot(&mut w);
    w.into_bytes()
}

struct CrashOutcome {
    /// What a recovery scan would find on disk after the crash.
    durable: Vec<u8>,
    /// Sequence numbers whose tickets resolved with a decision.
    acked: Vec<u64>,
    /// Total WAL operations a run with this plan executed.
    ops: u64,
}

/// Runs the service over the whole stream against a fault-scripted disk,
/// riding through the death: submissions stop when the service dies,
/// undecided tickets resolve with the failure.
fn crashed_run(f: &Fixture, plan: FaultPlan, ckpt: Option<(&Path, u64)>) -> CrashOutcome {
    let io = FaultIo::new(plan);
    let journal = Journal::from_io(Box::new(io.clone()));
    let mut cfg = serve_cfg(f);
    let dir: Option<PathBuf> = ckpt.map(|(d, every)| {
        cfg.checkpoint_every = every;
        d.to_path_buf()
    });
    let service =
        AdmissionService::start(fresh_state(f), journal, cfg, dir, 0).expect("service starts");
    let mut tickets = Vec::new();
    for req in &f.requests {
        match service.submit(req.clone()) {
            Ok(t) => tickets.push(t),
            Err(_) => break, // the service died mid-stream
        }
    }
    let acked = tickets.into_iter().filter_map(|t| t.wait().ok().map(|a| a.seq)).collect();
    let _ = service.drain();
    CrashOutcome { durable: io.durable_bytes(), acked, ops: io.ops() }
}

/// Recovers from a durable WAL image (scan → optional checkpoint →
/// replay), resumes the stream from the recovery position, drains
/// cleanly, and returns the final decision records and state snapshot.
fn resume_and_finish(
    f: &Fixture,
    durable: &[u8],
    ckpt: Option<(&Path, u64)>,
) -> (Vec<JournalRecord>, Vec<u8>) {
    let scan = journal::scan_bytes(durable);
    let (base, base_decided) = match ckpt {
        Some((dir, _)) => match checkpoint::load_latest(dir, f.digest).expect("checkpoint scan") {
            Some(c) => {
                let (n, state) =
                    wal::decode_checkpoint_payload(f.prepared.series.clone(), &c.payload)
                        .expect("checkpoint payload decodes");
                (state, n)
            }
            None => (fresh_state(f), 0),
        },
        None => (fresh_state(f), 0),
    };
    let recovered =
        wal::replay(base, base_decided, &scan.records, f.digest).expect("replay succeeds");
    let io = FaultIo::with_contents(durable[..scan.valid_len as usize].to_vec(), FaultPlan::none());
    let journal = Journal::open_append_io(Box::new(io.clone()), scan.valid_len)
        .expect("journal reopens at the valid prefix");
    let mut cfg = serve_cfg(f);
    if let Some((_, every)) = ckpt {
        cfg.checkpoint_every = every;
    }
    let service = AdmissionService::start(
        recovered.state,
        journal,
        cfg,
        ckpt.map(|(d, _)| d.to_path_buf()),
        recovered.decided,
    )
    .expect("service resumes");
    let tickets: Vec<_> = f.requests[recovered.decided as usize..]
        .iter()
        .map(|r| service.submit(r.clone()).expect("resumed submissions succeed"))
        .collect();
    for t in tickets {
        t.wait().expect("resumed decisions arrive");
    }
    let report = service.drain();
    assert_eq!(report.failure, None, "resumed run must drain cleanly");
    let final_scan = journal::scan_bytes(&io.durable_bytes());
    assert_eq!(final_scan.discarded_tail_bytes, 0);
    (final_scan.records, snapshot(&report.state))
}

fn splitmix(x: &mut u64) -> u64 {
    *x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[test]
fn kill_anywhere_recovery_is_bit_identical() {
    let f = fixture();
    let (ref_records, ref_snapshot) = resume_and_finish(&f, &[], None);
    assert_eq!(ref_records.len(), f.requests.len() + 1); // RunStart + decisions
    let ref_canon = canon(&ref_records);

    // Size the kill scripts against a clean run's operation count.
    let probe = crashed_run(&f, FaultPlan::none(), None);
    assert_eq!(probe.acked.len(), f.requests.len());
    let total_ops = probe.ops;
    assert!(total_ops > 10, "op count {total_ops} too small to script against");

    let mut x = 0xC0FF_EE00u64;
    let mut cells: Vec<(String, FaultPlan)> = Vec::new();
    for i in 0..20u64 {
        let at = 2 + splitmix(&mut x) % (total_ops - 2);
        let point = if i % 2 == 0 { CrashPoint::Before } else { CrashPoint::After };
        cells.push((
            format!("kill@{at}:{point:?}"),
            FaultPlan { crash_at: Some((at, point)), ..FaultPlan::none() },
        ));
    }
    // Crashes layered over healed IO noise: short writes and EINTR are
    // retried transparently by the journal, so they must not perturb the
    // decision stream either.
    for _ in 0..3 {
        let noise_a = 2 + splitmix(&mut x) % (total_ops - 2);
        let noise_b = 2 + splitmix(&mut x) % (total_ops - 2);
        let at = 2 + splitmix(&mut x) % (total_ops - 2);
        cells.push((
            format!("noisy-kill@{at}"),
            FaultPlan {
                short_write_at: vec![noise_a],
                eintr_at: vec![noise_b],
                crash_at: Some((at, CrashPoint::After)),
                ..FaultPlan::none()
            },
        ));
    }
    // Failed fsyncs (odd op indices are syncs in a clean run): the
    // service halts on the spot and the durable prefix still recovers.
    for at in [5u64, 21] {
        cells.push((
            format!("sync-fail@{at}"),
            FaultPlan { sync_fail_at: vec![at], ..FaultPlan::none() },
        ));
    }

    for (label, plan) in cells {
        let crash = crashed_run(&f, plan, None);
        let scan = journal::scan_bytes(&crash.durable);

        // WAL-before-ack: every acknowledged decision is durable.
        let durable_decisions = scan.records.len().saturating_sub(1) as u64;
        for seq in &crash.acked {
            assert!(
                *seq < durable_decisions,
                "{label}: acked seq {seq} but only {durable_decisions} durable decisions"
            );
        }
        // The durable prefix agrees with the reference decision stream.
        assert_eq!(
            canon(&scan.records)[..],
            ref_canon[..scan.records.len()],
            "{label}: durable prefix diverges from the reference stream"
        );
        // Recover, resume, finish: bit-identical stream and state.
        let (records, snap) = resume_and_finish(&f, &crash.durable, None);
        assert_eq!(canon(&records), ref_canon, "{label}: decision streams differ");
        assert_eq!(snap, ref_snapshot, "{label}: final states differ");
    }
}

/// Recovery through a checkpoint must land on the same stream and state
/// as replaying the whole WAL from scratch.
#[test]
fn checkpointed_recovery_matches_full_replay() {
    let f = fixture();
    let (ref_records, ref_snapshot) = resume_and_finish(&f, &[], None);
    let ref_canon = canon(&ref_records);
    for (i, at) in [17u64, 43].into_iter().enumerate() {
        let dir = std::env::temp_dir().join(format!("sb_serve_recovery_ckpt_{i}"));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();

        let plan = FaultPlan { crash_at: Some((at, CrashPoint::Before)), ..FaultPlan::none() };
        let crash = crashed_run(&f, plan, Some((&dir, 7)));
        let loaded = checkpoint::load_latest(&dir, f.digest).expect("checkpoint scan");
        assert!(loaded.is_some(), "kill@{at}: no checkpoint was written before the crash");

        let (records, snap) = resume_and_finish(&f, &crash.durable, Some((&dir, 7)));
        assert_eq!(canon(&records), ref_canon, "kill@{at}: decision streams differ");
        assert_eq!(snap, ref_snapshot, "kill@{at}: final states differ");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
