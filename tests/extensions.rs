//! Integration tests for the extension features: arrival patterns,
//! failure injection, battery wear, adaptive tuning and multipath — all
//! running through the full stack.

use space_booking::sb_cear::{
    AdaptiveCear, AdaptivePolicy, CearParams, MultipathCear, NetworkState,
};
use space_booking::sb_demand::ArrivalPattern;
use space_booking::sb_sim::engine::{self, AlgorithmKind};
use space_booking::sb_sim::ScenarioConfig;

#[test]
fn burst_pattern_degrades_welfare_during_the_burst() {
    let mut calm = ScenarioConfig::tiny();
    calm.arrivals_per_slot = 1.0;
    let mut stormy = calm.clone();
    stormy.pattern = ArrivalPattern::Burst { start_slot: 8, duration_slots: 8, multiplier: 6.0 };

    let kind = AlgorithmKind::Cear(CearParams::default());
    let calm_ratio: f64 =
        (0..3).map(|s| engine::run(&calm, &kind, s).social_welfare_ratio).sum::<f64>() / 3.0;
    let stormy_ratio: f64 =
        (0..3).map(|s| engine::run(&stormy, &kind, s).social_welfare_ratio).sum::<f64>() / 3.0;
    assert!(
        stormy_ratio < calm_ratio + 0.02,
        "a 6× burst should not raise the welfare ratio: calm {calm_ratio:.3} stormy {stormy_ratio:.3}"
    );
}

#[test]
fn isl_failures_flow_through_scenarios() {
    let mut scenario = ScenarioConfig::tiny();
    scenario.isl_failure_prob = 0.15;
    let m = engine::run(&scenario, &AlgorithmKind::Cear(CearParams::default()), 2);
    // Still a valid run with sane accounting.
    assert_eq!(
        m.accepted_requests + m.rejected_no_path + m.rejected_by_price + m.rejected_at_commit,
        m.total_requests
    );
    // The prepared topology really lost ISLs.
    let intact = engine::prepare(&ScenarioConfig::tiny(), 2);
    let failed = engine::prepare(&scenario, 2);
    let count = |p: &engine::PreparedNetwork| {
        p.series.snapshot(space_booking::sb_topology::SlotIndex(0)).num_edges()
    };
    assert!(count(&failed) < count(&intact), "failures must remove edges");
}

#[test]
fn wear_metrics_track_load() {
    let mut light = ScenarioConfig::tiny();
    light.arrivals_per_slot = 0.3;
    let mut heavy = ScenarioConfig::tiny();
    heavy.arrivals_per_slot = 3.0;
    let kind = AlgorithmKind::Ssp;
    let light_wear = engine::run(&light, &kind, 1).battery_wear;
    let heavy_wear = engine::run(&heavy, &kind, 1).battery_wear;
    assert!(
        heavy_wear.mean_equivalent_cycles >= light_wear.mean_equivalent_cycles,
        "more traffic cannot cycle batteries less: {:?} vs {:?}",
        heavy_wear,
        light_wear
    );
    assert!(heavy_wear.max_depth_of_discharge <= 1.0);
}

#[test]
fn adaptive_cear_completes_and_respects_bounds() {
    let scenario = ScenarioConfig::tiny();
    let prepared = engine::prepare(&scenario, 5);
    let requests = engine::workload(&scenario, &prepared, 5);
    let policy = AdaptivePolicy { retune_every: 5, ..AdaptivePolicy::default() };
    let mut algo = AdaptiveCear::new(scenario.cear, policy);
    let m = engine::run_with_algorithm(&scenario, &prepared, &requests, &mut algo, 5);
    assert_eq!(m.algorithm, "CEAR-adaptive");
    assert_eq!(m.total_requests, requests.len());
    for &f2 in algo.f2_history() {
        assert!((0.25..=64.0).contains(&f2));
    }
}

#[test]
fn multipath_never_loses_to_plain_cear() {
    let scenario = ScenarioConfig::tiny();
    let prepared = engine::prepare(&scenario, 6);
    let requests = engine::workload(&scenario, &prepared, 6);

    let plain = engine::run_prepared(
        &scenario,
        &prepared,
        &requests,
        &AlgorithmKind::Cear(scenario.cear),
        6,
    );

    let mut mp = MultipathCear::new(scenario.cear, 2);
    let multi = engine::run_with_algorithm(&scenario, &prepared, &requests, &mut mp, 6);
    assert!(
        multi.welfare >= plain.welfare - 1e-6,
        "splitting can only add feasible options: {} vs {}",
        multi.welfare,
        plain.welfare
    );
}

#[test]
fn retries_recover_some_rejections() {
    use space_booking::sb_sim::scenario::RetryPolicy;
    // Load the network enough that rejections happen, then allow retries:
    // welfare must not drop, and usually improves.
    let mut base = ScenarioConfig::tiny();
    base.arrivals_per_slot = 2.5;
    let mut with_retry = base.clone();
    with_retry.retry = Some(RetryPolicy { delay_slots: 3, max_attempts: 2 });

    // Note: retries are not a free lunch — a resubmitted request competes
    // with later fresh arrivals, so welfare can move either way. The test
    // checks the mechanics: retries happen, accounting stays coherent, and
    // the effect on welfare is bounded.
    let kind = AlgorithmKind::Cear(CearParams::default());
    let mut recovered = 0;
    for seed in 0..3 {
        let prepared = engine::prepare(&base, seed);
        let requests = engine::workload(&base, &prepared, seed);
        let plain = engine::run_prepared(&base, &prepared, &requests, &kind, seed);
        let retried = engine::run_prepared(&with_retry, &prepared, &requests, &kind, seed);
        assert_eq!(retried.total_requests, plain.total_requests);
        assert!(retried.accepted_after_retry <= retried.accepted_requests);
        assert!((0.0..=1.0).contains(&retried.social_welfare_ratio));
        assert!(
            (retried.social_welfare_ratio - plain.social_welfare_ratio).abs() < 0.3,
            "retries should perturb, not upend, welfare: {} vs {}",
            retried.social_welfare_ratio,
            plain.social_welfare_ratio
        );
        recovered += retried.accepted_after_retry;
    }
    assert!(recovered > 0, "across seeds, some rejection should be recovered by retry");
}

#[test]
fn failure_model_preserves_state_invariants() {
    let mut scenario = ScenarioConfig::tiny();
    scenario.isl_failure_prob = 0.3;
    let prepared = engine::prepare(&scenario, 9);
    let requests = engine::workload(&scenario, &prepared, 9);
    let mut state = NetworkState::new(prepared.series.clone(), &scenario.energy);
    let mut algo = AlgorithmKind::Cear(scenario.cear).instantiate();
    for r in &requests {
        let _ = algo.process(r, &mut state);
    }
    for sat in 0..state.num_satellites() {
        for t in 0..scenario.horizon_slots {
            assert!(state.ledger().battery_level_j(sat, t) >= -1e-6);
        }
    }
}
