//! Empirical competitive-ratio checks (Theorem 1).
//!
//! The theorem guarantees `OPT ≤ (2·log₂(μ₁μ₂) + 1) · CEAR` under
//! Assumptions 1–2. Exact OPT is intractable, but every upper bound on OPT
//! we can compute — the total valuation and the hindsight greedy — must
//! respect the inequality with room to spare on non-adversarial workloads.

use space_booking::sb_cear::{offline, Cear, CearParams, NetworkState, RoutingAlgorithm, Ssp};
use space_booking::sb_sim::engine::{self, AlgorithmKind};
use space_booking::sb_sim::ScenarioConfig;

#[test]
fn cear_beats_hindsight_over_ratio_bound() {
    let scenario = ScenarioConfig::tiny();
    let params = CearParams::default();
    let ratio = params.competitive_ratio();
    for seed in 0..3 {
        let prepared = engine::prepare(&scenario, seed);
        let requests = engine::workload(&scenario, &prepared, seed);

        let online = engine::run_prepared(
            &scenario,
            &prepared,
            &requests,
            &AlgorithmKind::Cear(params),
            seed,
        );

        // Hindsight greedy with value-density ordering, feasibility-greedy
        // admission — an optimistic offline reference.
        let mut state = NetworkState::new(prepared.series.clone(), &scenario.energy);
        let (hindsight, _) = offline::hindsight_welfare(&requests, &mut state, &mut Ssp::new());

        assert!(
            online.welfare * ratio >= hindsight - 1e-6,
            "seed {seed}: hindsight {hindsight:.3e} exceeds ratio bound over online \
             {:.3e} × {ratio:.1}",
            online.welfare
        );
    }
}

#[test]
fn cear_beats_exact_offline_over_ratio_bound() {
    // The strongest computable check of Theorem 1: branch-and-bound exact
    // offline optimum (SSP-routed) vs online CEAR, on small instances.
    use space_booking::sb_demand::{RateProfile, Request, RequestId};
    use space_booking::sb_topology::SlotIndex;

    let scenario = ScenarioConfig::tiny();
    let params = CearParams::default();
    let ratio = params.competitive_ratio();
    let prepared = engine::prepare(&scenario, 4);
    let (src, dst) = prepared.pairs[0];
    let state = NetworkState::new(prepared.series.clone(), &scenario.energy);

    // A hand-built contention instance: 10 requests over one pair.
    let requests: Vec<Request> = (0..10)
        .map(|i| Request {
            id: RequestId(i),
            source: src,
            destination: dst,
            rate: RateProfile::Constant(700.0 + 150.0 * (i % 4) as f64),
            start: SlotIndex(i % 3),
            end: SlotIndex(i % 3 + 2),
            valuation: 2.3e9,
        })
        .collect();

    let (exact, _) = offline::exact_offline_welfare(&requests, &state, || Box::new(Ssp::new()), 12);

    let mut online_state = state.clone();
    let mut cear = Cear::new(params);
    let mut online = 0.0;
    for r in &requests {
        if cear.process(r, &mut online_state).is_accepted() {
            online += r.valuation;
        }
    }
    assert!(
        online * ratio >= exact - 1e-6,
        "exact offline {exact:.3e} exceeds {ratio:.1}× online {online:.3e}"
    );
}

#[test]
fn competitive_ratio_formula_is_theorem1() {
    let p = CearParams::default();
    // μ₁ = μ₂ = 2(20·10·1 + 1) = 402; ratio = 2·log₂(402²)+1.
    let expected = 2.0 * (402.0f64 * 402.0).log2() + 1.0;
    assert!((p.competitive_ratio() - expected).abs() < 1e-12);
}

#[test]
fn assumption_satisfying_workload_validates() {
    // Build a workload inside the assumptions' regime and check the
    // validator agrees (the paper's own evaluation intentionally sits
    // outside it; see analysis module docs).
    use space_booking::sb_cear::analysis::check_assumptions;
    use space_booking::sb_demand::{RateProfile, Request, RequestId};
    use space_booking::sb_energy::EnergyParams;
    use space_booking::sb_topology::{NodeId, SlotIndex};

    let params = CearParams::default();
    // With n𝕋 = 200 and F₁ = F₂ = 1 the valuation band is tight; craft a
    // request with tiny demand and valuation exactly in band.
    let request = Request {
        id: RequestId(0),
        source: NodeId(0),
        destination: NodeId(1),
        rate: RateProfile::Constant(1e-4),
        start: SlotIndex(0),
        end: SlotIndex(0),
        valuation: 300.0, // within [n𝕋·max(δ,Ω), n𝕋F₁+n𝕋F₂] = [~0.2, 400]
    };
    let energy = EnergyParams::default();
    let report = check_assumptions(&[request], &params, &energy, 60.0, 4000.0, 117_000.0);
    assert!(report.all_hold(), "violations: {:?}", report.violations);
}

#[test]
fn online_never_exceeds_offline_upper_bound() {
    let scenario = ScenarioConfig::tiny();
    for seed in 0..3 {
        let prepared = engine::prepare(&scenario, seed);
        let requests = engine::workload(&scenario, &prepared, seed);
        let total = offline::total_valuation(&requests);
        let mut state = NetworkState::new(prepared.series.clone(), &scenario.energy);
        let mut cear = Cear::new(CearParams::default());
        let mut welfare = 0.0;
        for r in &requests {
            if cear.process(r, &mut state).is_accepted() {
                welfare += r.valuation;
            }
        }
        assert!(welfare <= total + 1e-6);
    }
}
