//! Serde round-trips of the public data types: configs and results must
//! survive disk persistence unchanged (the figure harnesses depend on it).

use space_booking::sb_cear::{CearParams, ReservationPlan, SlotPath};
use space_booking::sb_demand::{RateProfile, Request, RequestId};
use space_booking::sb_energy::{DeficitTrace, EnergyParams};
use space_booking::sb_orbit::kepler::OrbitalElements;
use space_booking::sb_orbit::tle::Tle;
use space_booking::sb_sim::engine::AlgorithmKind;
use space_booking::sb_sim::ScenarioConfig;
use space_booking::sb_topology::graph::EdgeId;
use space_booking::sb_topology::{NodeId, SlotIndex, TopologyConfig};

fn roundtrip<T: serde::Serialize + serde::de::DeserializeOwned + PartialEq + std::fmt::Debug>(
    value: &T,
) {
    let json = serde_json::to_string(value).unwrap();
    let back: T = serde_json::from_str(&json).unwrap();
    assert_eq!(value, &back);
}

#[test]
fn request_roundtrip() {
    roundtrip(&Request {
        id: RequestId(7),
        source: NodeId(3),
        destination: NodeId(9),
        rate: RateProfile::PerSlot(vec![100.0, 250.5]),
        start: SlotIndex(2),
        end: SlotIndex(5),
        valuation: 2.3e9,
    });
}

#[test]
fn plan_roundtrip() {
    roundtrip(&ReservationPlan {
        slot_paths: vec![SlotPath {
            slot: SlotIndex(0),
            nodes: vec![NodeId(0), NodeId(1)],
            edges: vec![EdgeId(4)],
        }],
        total_cost: 123.5,
    });
}

#[test]
fn configs_roundtrip() {
    roundtrip(&ScenarioConfig::paper());
    roundtrip(&ScenarioConfig::fast());
    roundtrip(&TopologyConfig::default());
    roundtrip(&EnergyParams::default());
    roundtrip(&CearParams::default());
    roundtrip(&AlgorithmKind::Cear(CearParams::with_conservativeness(2.0, 0.5)));
}

#[test]
fn orbit_types_roundtrip() {
    roundtrip(&OrbitalElements::circular(
        550e3,
        0.9,
        0.1,
        0.2,
        space_booking::sb_geo::Epoch::from_seconds(0.0),
    ));
    let l1 = "1 25544U 98067A   24001.50000000  .00016717  00000-0  10270-3 0  9009";
    let l2 = "2 25544  51.6400 208.9163 0006317  69.9862 290.2553 15.49560532    00";
    roundtrip(&Tle::parse("ISS", l1, l2).unwrap());
}

#[test]
fn deficit_trace_roundtrip() {
    roundtrip(&DeficitTrace { per_slot: vec![(3, 10.5), (4, 2.0)], added_deficit_j: 12.5 });
}
