//! Service/batch equivalence at the metrics level: driving every engine
//! decision through a live [`sb_serve::AdmissionService`] must reproduce
//! the serial batch run's `RunMetrics` exactly, at any worker count.

use space_booking::sb_cear::CearParams;
use space_booking::sb_serve::{run_served, ServeConfig};
use space_booking::sb_sim::engine::{self, AlgorithmKind};
use space_booking::sb_sim::ScenarioConfig;

#[test]
fn served_metrics_equal_serial_batch_at_every_worker_count() {
    let scenario = ScenarioConfig::tiny();
    let seed = 0;
    let kind = AlgorithmKind::Cear(CearParams::default());
    let digest = engine::run_digest(&scenario, &kind, seed);
    let prepared = engine::prepare(&scenario, seed);
    let requests = engine::workload(&scenario, &prepared, seed);
    let reference = engine::run_prepared(&scenario, &prepared, &requests, &kind, seed);

    for workers in [1usize, 4] {
        let mut cfg = ServeConfig::new(digest, seed);
        cfg.workers = workers;
        let (mut metrics, report) = run_served(&scenario, &prepared, &requests, seed, cfg);
        assert_eq!(report.failure, None, "workers={workers}");
        // The engine's closed loop keeps occupancy at one: nothing can
        // conflict and nothing is shed, so the decision stream is exactly
        // serial CEAR's.
        assert_eq!(report.stats.conflicts, 0, "workers={workers}");
        assert_eq!(report.stats.shed_queue_full, 0, "workers={workers}");
        assert_eq!(report.stats.shed_deadline, 0, "workers={workers}");
        assert_eq!(report.stats.shed_retries, 0, "workers={workers}");
        metrics.processing_ms = reference.processing_ms; // wall clock may differ
        assert_eq!(metrics, reference, "workers={workers}");
    }
}
