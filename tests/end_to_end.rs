//! End-to-end integration tests: the full pipeline from orbits to
//! decisions, with the invariants of Lemma 1 checked on the final state.

use space_booking::sb_cear::{CearParams, NetworkState};
use space_booking::sb_energy::EnergyParams;
use space_booking::sb_sim::engine::{self, AlgorithmKind};
use space_booking::sb_sim::ScenarioConfig;
use space_booking::sb_topology::graph::EdgeId;
use space_booking::sb_topology::SlotIndex;

#[test]
fn all_algorithms_complete_a_tiny_scenario() {
    let scenario = ScenarioConfig::tiny();
    let prepared = engine::prepare(&scenario, 1);
    let requests = engine::workload(&scenario, &prepared, 1);
    assert!(!requests.is_empty());
    for kind in AlgorithmKind::all(&scenario) {
        let m = engine::run_prepared(&scenario, &prepared, &requests, &kind, 1);
        assert_eq!(
            m.accepted_requests + m.rejected_no_path + m.rejected_by_price + m.rejected_at_commit,
            m.total_requests,
            "{} accounting",
            m.algorithm
        );
        assert!(m.welfare <= m.total_valuation);
        assert!((0.0..=1.0).contains(&m.social_welfare_ratio));
    }
}

/// Lemma 1: after any sequence of online decisions, bandwidth reservations
/// never exceed capacity and batteries never go negative — for every
/// algorithm, not just CEAR.
#[test]
fn lemma1_feasibility_holds_for_every_algorithm() {
    let scenario = ScenarioConfig::tiny();
    let prepared = engine::prepare(&scenario, 2);
    let requests = engine::workload(&scenario, &prepared, 2);
    for kind in AlgorithmKind::all(&scenario) {
        let mut state = NetworkState::new(prepared.series.clone(), &scenario.energy);
        let mut algorithm = kind.instantiate();
        for request in &requests {
            let _ = algorithm.process(request, &mut state);
        }
        for t in 0..scenario.horizon_slots {
            let slot = SlotIndex(t as u32);
            let snap = state.series().snapshot(slot);
            for idx in 0..snap.num_edges() {
                let residual = state.residual_mbps(slot, EdgeId(idx as u32));
                assert!(residual >= -1e-6, "{}: negative residual at {slot}", kind.name());
            }
            for sat in 0..state.num_satellites() {
                let level = state.ledger().battery_level_j(sat, t);
                assert!(
                    (-1e-6..=scenario.energy.battery_capacity_j + 1e-6).contains(&level),
                    "{}: battery out of range at {slot}: {level}",
                    kind.name()
                );
                assert!(state.ledger().remaining_solar_j(sat, t) >= 0.0);
            }
        }
    }
}

#[test]
fn runs_are_deterministic_across_invocations() {
    let scenario = ScenarioConfig::tiny();
    for kind in [AlgorithmKind::Cear(CearParams::default()), AlgorithmKind::Era] {
        let mut a = engine::run(&scenario, &kind, 9);
        let mut b = engine::run(&scenario, &kind, 9);
        a.processing_ms = 0;
        b.processing_ms = 0;
        assert_eq!(a, b, "{} determinism", kind.name());
    }
}

#[test]
fn energy_params_flow_through_the_stack() {
    // Starving the satellites of battery should slash acceptance.
    let scenario = ScenarioConfig::tiny();
    let prepared = engine::prepare(&scenario, 3);
    let requests = engine::workload(&scenario, &prepared, 3);

    let rich = engine::run_prepared(&scenario, &prepared, &requests, &AlgorithmKind::Ssp, 3);

    let mut poor_scenario = scenario.clone();
    poor_scenario.energy = EnergyParams { battery_capacity_j: 2_000.0, ..EnergyParams::default() };
    let poor = engine::run_prepared(&poor_scenario, &prepared, &requests, &AlgorithmKind::Ssp, 3);

    assert!(
        poor.accepted_requests < rich.accepted_requests,
        "tiny batteries ({}) should not admit as much as full ones ({})",
        poor.accepted_requests,
        rich.accepted_requests
    );
}

#[test]
fn higher_load_never_increases_welfare_ratio_dramatically() {
    // Sanity on the Fig. 6 trend: the welfare ratio at 4× the base load
    // should not exceed the ratio at the base load by more than noise.
    let mut low = ScenarioConfig::tiny();
    low.arrivals_per_slot = 0.5;
    let mut high = ScenarioConfig::tiny();
    high.arrivals_per_slot = 2.0;
    let kind = AlgorithmKind::Cear(CearParams::default());
    let low_ratio: f64 =
        (0..3).map(|s| engine::run(&low, &kind, s).social_welfare_ratio).sum::<f64>() / 3.0;
    let high_ratio: f64 =
        (0..3).map(|s| engine::run(&high, &kind, s).social_welfare_ratio).sum::<f64>() / 3.0;
    assert!(
        high_ratio <= low_ratio + 0.15,
        "welfare ratio should degrade with load: low {low_ratio:.3} high {high_ratio:.3}"
    );
}
