//! Shape tests: the qualitative findings of the paper's evaluation must
//! hold in this reproduction at reduced scale.
//!
//! These encode *who wins*, not absolute numbers: Fig. 6's algorithm
//! ordering, Fig. 7's congestion behaviour, Fig. 8's gradual-vs-rapid
//! decline, and Fig. 9's parameter sensitivities.

use space_booking::sb_cear::CearParams;
use space_booking::sb_demand::ValuationModel;
use space_booking::sb_sim::engine::{self, AlgorithmKind};
use space_booking::sb_sim::{RunMetrics, ScenarioConfig};

/// Runs all five algorithms on the same prepared network/workload,
/// averaged over `seeds`.
fn comparison(scenario: &ScenarioConfig, seeds: u64) -> Vec<(String, f64, RunMetrics)> {
    let mut out = Vec::new();
    for kind in AlgorithmKind::all(scenario) {
        let mut ratios = Vec::new();
        let mut last = None;
        for seed in 0..seeds {
            let prepared = engine::prepare(scenario, seed);
            let requests = engine::workload(scenario, &prepared, seed);
            let m = engine::run_prepared(scenario, &prepared, &requests, &kind, seed);
            ratios.push(m.social_welfare_ratio);
            last = Some(m);
        }
        let mean = ratios.iter().sum::<f64>() / ratios.len() as f64;
        out.push((kind.name().to_owned(), mean, last.unwrap()));
    }
    out
}

fn ratio_of(results: &[(String, f64, RunMetrics)], name: &str) -> f64 {
    results.iter().find(|(n, _, _)| n == name).unwrap().1
}

#[test]
fn fig6_ordering_cear_wins_eru_loses() {
    // Moderate load makes the ordering crisp (everyone near 1.0 at light
    // load, everyone starved at extreme load).
    let mut scenario = ScenarioConfig::tiny();
    scenario.arrivals_per_slot = 2.0;
    let results = comparison(&scenario, 3);
    let cear = ratio_of(&results, "CEAR");
    for name in ["SSP", "ECARS", "ERU"] {
        let other = ratio_of(&results, name);
        assert!(cear >= other - 0.02, "CEAR ({cear:.3}) should dominate {name} ({other:.3})");
    }
    // ERU's over-pruning makes it the weakest — the paper's stand-out
    // negative result.
    let eru = ratio_of(&results, "ERU");
    for name in ["CEAR", "SSP", "ECARS", "ERA"] {
        let other = ratio_of(&results, name);
        assert!(eru <= other + 0.02, "ERU ({eru:.3}) should trail {name} ({other:.3})");
    }
}

#[test]
fn fig6_welfare_declines_with_arrival_rate() {
    let kind = AlgorithmKind::Cear(CearParams::default());
    let mut prev = f64::INFINITY;
    for rate in [0.5, 1.5, 3.0] {
        let mut scenario = ScenarioConfig::tiny();
        scenario.arrivals_per_slot = rate;
        let mean: f64 =
            (0..3).map(|s| engine::run(&scenario, &kind, s).social_welfare_ratio).sum::<f64>()
                / 3.0;
        assert!(
            mean <= prev + 0.1,
            "welfare ratio should fall with load: {mean:.3} after {prev:.3} at rate {rate}"
        );
        prev = mean;
    }
}

#[test]
fn fig7_ssp_congests_more_links_than_cear() {
    // The paper runs the congestion comparison at 2.5× the default rate.
    let mut scenario = ScenarioConfig::tiny();
    scenario.arrivals_per_slot = 2.5;
    let results = comparison(&scenario, 2);
    let cear_cong = results.iter().find(|(n, _, _)| n == "CEAR").unwrap().2.mean_congested();
    let ssp_cong = results.iter().find(|(n, _, _)| n == "SSP").unwrap().2.mean_congested();
    assert!(
        cear_cong <= ssp_cong + 0.5,
        "CEAR ({cear_cong:.2}) should not congest more links than SSP ({ssp_cong:.2})"
    );
}

#[test]
fn fig8_welfare_ratio_declines_over_time() {
    // Every algorithm starts with an empty network (ratio near 1) and
    // declines as resources fill; CEAR's curve must end highest.
    let mut scenario = ScenarioConfig::tiny();
    scenario.arrivals_per_slot = 2.0;
    let results = comparison(&scenario, 2);
    for (name, _, metrics) in &results {
        let series = &metrics.welfare_ratio_over_time;
        let early = series[series.len() / 4];
        let late = *series.last().unwrap();
        assert!(
            late <= early + 0.05,
            "{name}: cumulative ratio should not rise over time ({early:.3} → {late:.3})"
        );
    }
    let cear_final = results.iter().find(|(n, _, _)| n == "CEAR").unwrap().2.social_welfare_ratio;
    let ssp_final = results.iter().find(|(n, _, _)| n == "SSP").unwrap().2.social_welfare_ratio;
    assert!(cear_final >= ssp_final - 0.02);
}

#[test]
fn fig9_welfare_rises_with_valuation() {
    // Left subfigure: higher valuations clear higher prices, so the
    // welfare ratio is non-decreasing in the valuation (then saturates).
    let mut prev = -1.0;
    for v in [1e5, 1e7, 2.3e9] {
        let mut scenario = ScenarioConfig::tiny();
        scenario.arrivals_per_slot = 2.0;
        scenario.valuation = ValuationModel::Constant(v);
        let kind = AlgorithmKind::Cear(scenario.cear);
        let mean: f64 =
            (0..3).map(|s| engine::run(&scenario, &kind, s).social_welfare_ratio).sum::<f64>()
                / 3.0;
        assert!(
            mean >= prev - 0.02,
            "ratio should rise with valuation: {mean:.3} after {prev:.3} at {v:.1e}"
        );
        prev = mean;
    }
}

#[test]
fn fig9_higher_f2_is_more_conservative() {
    // Right subfigure: raising F₂ raises energy prices, conserving
    // batteries at the cost of welfare.
    let run_with_f2 = |f2: f64| -> f64 {
        let mut scenario = ScenarioConfig::tiny();
        scenario.arrivals_per_slot = 2.0;
        scenario.cear = CearParams::with_conservativeness(1.0, f2);
        let kind = AlgorithmKind::Cear(scenario.cear);
        (0..3).map(|s| engine::run(&scenario, &kind, s).social_welfare_ratio).sum::<f64>() / 3.0
    };
    let low = run_with_f2(1.0);
    let high = run_with_f2(16.0);
    assert!(high <= low + 0.02, "F2=16 ({high:.3}) should not beat F2=1 ({low:.3}) on welfare");
}
